"""Per-subcarrier channel state information (CSI).

The attacker in Section 4.1 transmits fake frames and measures the CSI of
each returning ACK.  CSI is the channel's complex frequency response
sampled at the OFDM subcarriers; its time evolution encodes motion near
either endpoint.  We synthesize it with a geometric multipath model:

``H_k(t) = Σ_p a_p · exp(−j 2π f_k τ_p(t))``

with a line-of-sight path, a handful of static reflectors, and one
*dynamic* path bounced off a human scatterer whose excess path length is
driven by a :class:`~repro.channel.motion.MotionModel`.  At 2.4 GHz a
1.5 cm keystroke displacement rotates the dynamic path's phase by ~44°,
which beats against the static paths and produces exactly the bursty
amplitude signature of the paper's Figure 5.

The model plugs into the medium as ``csi_model`` so that every reception
carries a CSI snapshot, the same way an ESP32 reports CSI per frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.motion import MotionModel
from repro.channel.noise import CsiMeasurementNoise
from repro.sim.world import SPEED_OF_LIGHT, Position


@dataclass(frozen=True)
class Subcarriers:
    """The 52 used subcarriers of a 20 MHz 802.11 OFDM channel.

    Indices run −26…−1, +1…+26 (DC is unused); spacing is 312.5 kHz.  The
    paper plots "subcarrier 17", which maps to positive index 17 here.
    """

    count: int = 52
    spacing_hz: float = 312_500.0

    @property
    def indices(self) -> np.ndarray:
        half = self.count // 2
        negative = np.arange(-half, 0)
        positive = np.arange(1, half + 1)
        return np.concatenate([negative, positive])

    def frequencies(self, center_hz: float) -> np.ndarray:
        """Absolute subcarrier frequencies for a centre frequency."""
        return center_hz + self.indices * self.spacing_hz

    def array_index(self, subcarrier: int) -> int:
        """Position of a subcarrier number within the CSI vector."""
        matches = np.where(self.indices == subcarrier)[0]
        if len(matches) == 0:
            raise ValueError(f"subcarrier {subcarrier} not in use")
        return int(matches[0])


@dataclass
class _Path:
    """One multipath component."""

    length_m: float
    amplitude: float
    phase: float = 0.0
    motion: Optional[MotionModel] = None

    def delay_at(self, time: float) -> float:
        length = self.length_m
        if self.motion is not None:
            length += self.motion.displacement(time)
        return length / SPEED_OF_LIGHT


class MultipathChannel:
    """Geometric multipath between one transmitter and one receiver.

    Parameters
    ----------
    tx, rx:
        Endpoint positions (static; the sensing scenarios keep attacker and
        victim parked while the *environment* moves).
    center_frequency_hz:
        Carrier; defaults to channel 6.
    reflectors:
        Number of static bounce paths beyond line of sight.
    motion / scatterer:
        The dynamic path: a motion model plus the scatterer's resting
        position (defaults to 1 m beside the midpoint of the link).
    dynamic_gain:
        Amplitude of the dynamic path relative to line of sight (a human
        torso reflects strongly; a fingertip weakly).
    """

    def __init__(
        self,
        tx: Position,
        rx: Position,
        rng: np.random.Generator,
        center_frequency_hz: float = 2.437e9,
        subcarriers: Optional[Subcarriers] = None,
        reflectors: int = 4,
        motion: Optional[MotionModel] = None,
        scatterer: Optional[Position] = None,
        dynamic_gain: float = 0.35,
    ) -> None:
        self.tx = tx
        self.rx = rx
        self.subcarriers = subcarriers if subcarriers is not None else Subcarriers()
        self.center_frequency_hz = center_frequency_hz
        self._frequencies = self.subcarriers.frequencies(center_frequency_hz)
        self.motion = motion

        los_length = max(tx.distance_to(rx), 0.5)
        paths: List[_Path] = [_Path(length_m=los_length, amplitude=1.0)]
        for _ in range(reflectors):
            excess = float(rng.uniform(1.2, 3.5))
            amplitude = float(rng.uniform(0.15, 0.45)) / excess
            phase = float(rng.uniform(0.0, 2.0 * np.pi))
            paths.append(
                _Path(
                    length_m=los_length * excess,
                    amplitude=amplitude,
                    phase=phase,
                )
            )
        if motion is not None:
            if scatterer is None:
                midpoint = Position(
                    (tx.x + rx.x) / 2.0, (tx.y + rx.y) / 2.0, (tx.z + rx.z) / 2.0
                )
                scatterer = midpoint.translated(dy=1.0)
            bounce_length = tx.distance_to(scatterer) + scatterer.distance_to(rx)
            paths.append(
                _Path(
                    length_m=bounce_length,
                    amplitude=dynamic_gain,
                    phase=float(rng.uniform(0.0, 2.0 * np.pi)),
                    motion=motion,
                )
            )
        # Normalize total amplitude so |H| is O(1) regardless of path count.
        total = sum(path.amplitude for path in paths)
        for path in paths:
            path.amplitude /= total
        self._paths = paths

    def response(self, time: float) -> np.ndarray:
        """Complex CSI vector (one entry per subcarrier) at ``time``."""
        response = np.zeros(len(self._frequencies), dtype=complex)
        for path in self._paths:
            delay = path.delay_at(time)
            response += path.amplitude * np.exp(
                -1j * (2.0 * np.pi * self._frequencies * delay + path.phase)
            )
        return response

    def amplitude_series(
        self, times: np.ndarray, subcarrier: int
    ) -> np.ndarray:
        """|H| of one subcarrier over a time vector (analysis convenience)."""
        index = self.subcarriers.array_index(subcarrier)
        return np.array([abs(self.response(t)[index]) for t in times])


class CsiChannelModel:
    """Registry of per-link multipath channels; the medium's ``csi_model``.

    Links are registered explicitly for scenarios that care about CSI
    (sensing, keystroke inference).  Unregistered links yield ``None`` —
    the survey's thousands of links never pay for CSI synthesis.  The
    optional measurement-noise model corrupts each snapshot the way a real
    receiver's estimate is corrupted.
    """

    def __init__(
        self,
        noise: Optional[CsiMeasurementNoise] = None,
        subcarriers: Optional[Subcarriers] = None,
    ) -> None:
        self.noise = noise
        self.subcarriers = subcarriers if subcarriers is not None else Subcarriers()
        self._links: Dict[Tuple[str, str], MultipathChannel] = {}

    def register_link(
        self, tx_name: str, rx_name: str, channel: MultipathChannel
    ) -> None:
        """Attach a channel to the (tx → rx) link and its reverse.

        Radio channels are reciprocal: the ACK's CSI (victim → attacker)
        reflects the same multipath geometry as the forward link, which is
        precisely why measuring ACKs works for sensing.
        """
        self._links[(tx_name, rx_name)] = channel
        self._links.setdefault((rx_name, tx_name), channel)

    def link(self, tx_name: str, rx_name: str) -> Optional[MultipathChannel]:
        return self._links.get((tx_name, rx_name))

    def __call__(self, tx_name: str, rx_name: str, time: float) -> Optional[np.ndarray]:
        channel = self._links.get((tx_name, rx_name))
        if channel is None:
            return None
        snapshot = channel.response(time)
        if self.noise is not None:
            snapshot = self.noise.apply(snapshot)
        return snapshot
