"""Small-scale fading draws.

Scalar multipath fading for links where we do not track full geometry
(thousands of survey links): Rayleigh for non-line-of-sight street-to-
indoor paths and Rician with a configurable K-factor when a dominant path
exists.  Both return *power* gains in dB around the large-scale mean, with
unit average power (so they compose with the path-loss model without
biasing the link budget).
"""

from __future__ import annotations

import numpy as np


class RayleighFading:
    """NLOS fading: |h|² with h ~ CN(0, 1)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def gain_linear(self) -> float:
        real = self._rng.normal(0.0, np.sqrt(0.5))
        imaginary = self._rng.normal(0.0, np.sqrt(0.5))
        return float(real * real + imaginary * imaginary)

    def gain_db(self) -> float:
        return float(10.0 * np.log10(max(self.gain_linear(), 1e-12)))


class RicianFading:
    """LOS-dominant fading with K-factor (ratio of LOS to scattered power)."""

    def __init__(self, rng: np.random.Generator, k_factor_db: float = 6.0) -> None:
        self._rng = rng
        self.k_factor_db = k_factor_db

    def gain_linear(self) -> float:
        k = 10.0 ** (self.k_factor_db / 10.0)
        # Unit-mean-power decomposition: LOS amplitude + CN scattered part.
        los = np.sqrt(k / (k + 1.0))
        sigma = np.sqrt(1.0 / (2.0 * (k + 1.0)))
        real = los + self._rng.normal(0.0, sigma)
        imaginary = self._rng.normal(0.0, sigma)
        return float(real * real + imaginary * imaginary)

    def gain_db(self) -> float:
        return float(10.0 * np.log10(max(self.gain_linear(), 1e-12)))
