"""Human-motion displacement models.

A motion model maps time to the **extra path length** (metres) of the
dynamic multipath component reflected off a moving body part.  At 2.4 GHz
the wavelength is ≈12.5 cm, so centimetre-scale displacement swings the
dynamic path's phase by large fractions of a cycle and the per-subcarrier
CSI amplitude wobbles visibly — exactly the effect Figure 5 exploits.

The models mirror the paper's Figure 5 timeline:

* the tablet on the ground — :class:`StillMotion`, essentially flat CSI;
* a person approaching and picking it up — :class:`PickupMotion`,
  decimetre-scale transient → large fluctuations;
* holding it — :class:`HoldMotion`, millimetre tremor → small slow wobble;
* typing — :class:`TypingMotion`, centimetre keystroke impulses at a few
  hertz → a bursty signature clearly distinct from holding;

plus :class:`BreathingMotion` and :class:`WalkingMotion` for the
Section 4.3 sensing opportunities (vital signs, occupancy).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np


class MotionModel:
    """Base class: displacement (metres) of the dynamic path vs time."""

    def displacement(self, time: float) -> float:
        raise NotImplementedError

    def __call__(self, time: float) -> float:
        return self.displacement(time)

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized convenience for analysis code."""
        return np.array([self.displacement(t) for t in times])


class StillMotion(MotionModel):
    """No moving scatterer near the device (tablet on the ground)."""

    def __init__(self, jitter_m: float = 0.0) -> None:
        self.jitter_m = jitter_m

    def displacement(self, time: float) -> float:
        if self.jitter_m == 0.0:
            return 0.0
        # Sub-millimetre environmental vibration, deterministic in time.
        return self.jitter_m * math.sin(2.0 * math.pi * 47.0 * time)


class PickupMotion(MotionModel):
    """A person walks up and lifts the device: a large smooth transient.

    Displacement ramps through several tens of centimetres with a raised-
    cosine profile plus a decaying oscillation as the grip settles.
    """

    def __init__(
        self,
        start: float = 0.0,
        duration: float = 2.0,
        travel_m: float = 0.6,
        settle_hz: float = 2.5,
    ) -> None:
        if duration <= 0.0:
            raise ValueError("pickup duration must be positive")
        self.start = start
        self.duration = duration
        self.travel_m = travel_m
        self.settle_hz = settle_hz

    def displacement(self, time: float) -> float:
        elapsed = time - self.start
        if elapsed <= 0.0:
            return 0.0
        if elapsed >= self.duration:
            # Settled at the final height with a dying wobble.
            decay = math.exp(-2.0 * (elapsed - self.duration))
            wobble = 0.02 * decay * math.sin(
                2.0 * math.pi * self.settle_hz * elapsed
            )
            return self.travel_m + wobble
        phase = elapsed / self.duration
        ramp = 0.5 * (1.0 - math.cos(math.pi * phase))
        wobble = 0.03 * math.sin(2.0 * math.pi * 3.0 * elapsed) * phase
        return self.travel_m * ramp + wobble


class HoldMotion(MotionModel):
    """Physiological tremor while holding a device: mm-scale, 1–3 Hz."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        amplitude_m: float = 0.004,
        components: int = 3,
        offset_m: float = 0.0,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(7)
        self.offset_m = offset_m
        self._terms: List[Tuple[float, float, float]] = []
        for _ in range(components):
            frequency = float(rng.uniform(1.0, 3.0))
            amplitude = float(rng.uniform(0.4, 1.0)) * amplitude_m
            phase = float(rng.uniform(0.0, 2.0 * math.pi))
            self._terms.append((frequency, amplitude, phase))

    def displacement(self, time: float) -> float:
        total = self.offset_m
        for frequency, amplitude, phase in self._terms:
            total += amplitude * math.sin(2.0 * math.pi * frequency * time + phase)
        return total


class TypingMotion(MotionModel):
    """Keystroke impulses: ~30 ms raised-cosine pulses of cm-scale motion.

    Keystroke instants are pre-drawn as a jittered train at the requested
    typing speed, so the model is deterministic after construction and the
    same frame-time queries always see the same keystrokes.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        start: float = 0.0,
        duration: float = 10.0,
        keystrokes_per_second: float = 5.0,
        pulse_width_s: float = 0.03,
        pulse_amplitude_m: float = 0.015,
        offset_m: float = 0.0,
        tremor: Optional[HoldMotion] = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(11)
        self.start = start
        self.duration = duration
        self.pulse_width_s = pulse_width_s
        self.pulse_amplitude_m = pulse_amplitude_m
        self.offset_m = offset_m
        self.tremor = tremor
        interval = 1.0 / keystrokes_per_second
        instants = []
        t = start + float(rng.uniform(0.0, interval))
        while t < start + duration:
            instants.append(t)
            t += interval * float(rng.uniform(0.6, 1.4))
        self.keystroke_times = np.array(instants)

    def displacement(self, time: float) -> float:
        total = self.offset_m
        if self.tremor is not None:
            total += self.tremor.displacement(time) - self.tremor.offset_m
        if len(self.keystroke_times) == 0:
            return total
        # Only the nearest few pulses can contribute.
        deltas = time - self.keystroke_times
        active = np.abs(deltas) < self.pulse_width_s
        for delta in deltas[active]:
            phase = (delta / self.pulse_width_s + 1.0) / 2.0  # 0..1
            total += self.pulse_amplitude_m * 0.5 * (
                1.0 - math.cos(2.0 * math.pi * phase)
            )
        return total


class BreathingMotion(MotionModel):
    """Chest displacement while breathing: ~5 mm sinusoid at 10–20 bpm."""

    def __init__(
        self,
        rate_bpm: float = 15.0,
        amplitude_m: float = 0.005,
        phase: float = 0.0,
        offset_m: float = 0.0,
    ) -> None:
        if rate_bpm <= 0.0:
            raise ValueError("breathing rate must be positive")
        self.rate_bpm = rate_bpm
        self.amplitude_m = amplitude_m
        self.phase = phase
        self.offset_m = offset_m

    @property
    def rate_hz(self) -> float:
        return self.rate_bpm / 60.0

    def displacement(self, time: float) -> float:
        return self.offset_m + self.amplitude_m * math.sin(
            2.0 * math.pi * self.rate_hz * time + self.phase
        )


class HeartbeatMotion(BreathingMotion):
    """Chest-wall displacement from the heartbeat: ~0.5 mm at 0.8–2.5 Hz.

    An order of magnitude weaker than breathing; the vital-signs
    estimator separates the two by frequency band.
    """

    def __init__(
        self,
        rate_bpm: float = 72.0,
        amplitude_m: float = 0.0005,
        phase: float = 0.0,
    ) -> None:
        super().__init__(rate_bpm=rate_bpm, amplitude_m=amplitude_m, phase=phase)


class WalkingMotion(MotionModel):
    """A person walking through the room: metre-scale travel plus gait sway."""

    def __init__(
        self,
        start: float = 0.0,
        speed_mps: float = 1.2,
        gait_hz: float = 1.8,
        sway_m: float = 0.05,
        span_m: float = 6.0,
    ) -> None:
        self.start = start
        self.speed_mps = speed_mps
        self.gait_hz = gait_hz
        self.sway_m = sway_m
        self.span_m = span_m

    def displacement(self, time: float) -> float:
        elapsed = time - self.start
        if elapsed <= 0.0:
            return 0.0
        # Walk back and forth across the span (triangular travel).
        distance = self.speed_mps * elapsed
        lap, within = divmod(distance, self.span_m)
        travel = within if int(lap) % 2 == 0 else self.span_m - within
        sway = self.sway_m * math.sin(2.0 * math.pi * self.gait_hz * elapsed)
        return travel + sway


class CompositeMotion(MotionModel):
    """Sum of simultaneous motions (e.g. breathing while holding)."""

    def __init__(self, components: Sequence[MotionModel]) -> None:
        if not components:
            raise ValueError("CompositeMotion needs at least one component")
        self.components = list(components)

    def displacement(self, time: float) -> float:
        return sum(component.displacement(time) for component in self.components)


class ScheduledMotion(MotionModel):
    """A labelled timeline of motion segments — the Figure 5 scenario.

    Segments are ``(start, end, label, model)``; outside all segments the
    displacement is zero (still).  Each segment's model is queried with
    absolute time, and segment transitions hold the previous segment's
    final displacement as the new baseline so the path length does not
    teleport.
    """

    def __init__(
        self, segments: Sequence[Tuple[float, float, str, MotionModel]]
    ) -> None:
        ordered = sorted(segments, key=lambda item: item[0])
        for (s1, e1, _, _), (s2, _, _, _) in zip(ordered, ordered[1:]):
            if s2 < e1:
                raise ValueError("motion segments overlap")
            if e1 < s1:
                raise ValueError("segment ends before it starts")
        self.segments = ordered

    def label_at(self, time: float) -> str:
        for start, end, label, _ in self.segments:
            if start <= time < end:
                return label
        return "still"

    def displacement(self, time: float) -> float:
        baseline = 0.0
        for start, end, _, model in self.segments:
            if time < start:
                break
            if time < end:
                return baseline + model.displacement(time)
            baseline += model.displacement(end)
        return baseline

    @property
    def labels(self) -> List[str]:
        return [label for _, _, label, _ in self.segments]
