"""Figure series containers and terminal rendering.

A :class:`FigureSeries` is the data behind one curve of a paper figure;
:func:`ascii_plot` renders one or more series as a terminal plot so the
benchmark output is inspectable without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass
class FigureSeries:
    """One labelled (x, y) curve."""

    label: str
    x: np.ndarray
    y: np.ndarray
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError("x and y must have the same shape")

    def __len__(self) -> int:
        return len(self.x)

    def downsample(self, max_points: int) -> "FigureSeries":
        if len(self.x) <= max_points:
            return self
        indices = np.linspace(0, len(self.x) - 1, max_points).astype(int)
        return FigureSeries(
            self.label, self.x[indices], self.y[indices], self.x_label, self.y_label
        )


_MARKS = "*o+x#@"


def ascii_plot(
    series: Sequence[FigureSeries],
    width: int = 72,
    height: int = 18,
    title: Optional[str] = None,
) -> str:
    """Scatter one or more series onto a character grid."""
    live = [s for s in series if len(s) > 0]
    if not live:
        return "(no data)"
    x_min = min(float(np.min(s.x)) for s in live)
    x_max = max(float(np.max(s.x)) for s in live)
    y_min = min(float(np.min(s.y)) for s in live)
    y_max = max(float(np.max(s.y)) for s in live)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for series_index, s in enumerate(live):
        mark = _MARKS[series_index % len(_MARKS)]
        for x, y in zip(s.x, s.y):
            column = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append("       |" + "".join(row) + "|")
    lines.append(f"{y_min:.4g} +" + "-" * width + "+")
    lines.append(
        f"        {x_min:.4g}"
        + " " * max(width - 16, 1)
        + f"{x_max:.4g}  ({live[0].x_label})"
    )
    for series_index, s in enumerate(live):
        lines.append(f"        [{_MARKS[series_index % len(_MARKS)]}] {s.label}")
    return "\n".join(lines)
