"""Small statistics helpers used by benchmarks and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Five-number-ish summary of a sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return Summary(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
    return Summary(
        count=int(array.size),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
        minimum=float(np.min(array)),
        median=float(np.median(array)),
        maximum=float(np.max(array)),
    )


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares line fit: returns (slope, intercept, r²).

    Used to verify the linear region of the Figure 6 power curve.
    """
    x_array = np.asarray(list(x), dtype=float)
    y_array = np.asarray(list(y), dtype=float)
    if x_array.size < 2:
        raise ValueError("need at least two points for a fit")
    slope, intercept = np.polyfit(x_array, y_array, 1)
    predicted = slope * x_array + intercept
    total = float(np.sum((y_array - np.mean(y_array)) ** 2))
    residual = float(np.sum((y_array - predicted) ** 2))
    r_squared = 1.0 - residual / total if total > 0.0 else 1.0
    return float(slope), float(intercept), float(r_squared)
