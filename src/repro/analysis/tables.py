"""Plain-text table rendering."""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    align_right: Optional[Sequence[bool]] = None,
) -> str:
    """Render rows as an aligned monospace table.

    ``align_right`` marks numeric columns; defaults to right-aligning
    anything that renders as a number in the first data row.
    """
    rendered = [[_cell(value) for value in row] for row in rows]
    table = [list(headers)] + rendered
    widths = [
        max(len(row[column]) if column < len(row) else 0 for row in table)
        for column in range(len(headers))
    ]
    if align_right is None:
        probe = rendered[0] if rendered else []
        align_right = [
            _is_number(probe[column]) if column < len(probe) else False
            for column in range(len(headers))
        ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[i]) for i, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        cells = []
        for column in range(len(headers)):
            value = row[column] if column < len(row) else ""
            if align_right[column]:
                cells.append(value.rjust(widths[column]))
            else:
                cells.append(value.ljust(widths[column]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000.0 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text.rstrip("x%"))
        return True
    except ValueError:
        return False
