"""Reporting helpers: tables, figure series, summary statistics.

The benchmark harness uses these to print the same rows and series the
paper's tables and figures report, so `pytest benchmarks/` output can be
compared against the paper side by side (see EXPERIMENTS.md).
"""

from repro.analysis.figures import FigureSeries, ascii_plot
from repro.analysis.stats import linear_fit, summarize
from repro.analysis.tables import render_table

__all__ = [
    "FigureSeries",
    "ascii_plot",
    "linear_fit",
    "render_table",
    "summarize",
]
