"""CRC-32 frame check sequence.

Every 802.11 frame ends in a 4-byte FCS computed with the IEEE CRC-32
(polynomial 0x04C11DB7, reflected, initial value and final XOR of
0xFFFFFFFF — the same CRC used by Ethernet and zlib).  This check is the
*entirety* of what a receiver validates before acknowledging a frame: a
fake frame with a correct FCS is, to the PHY, a perfectly good frame.

Implemented from scratch (table-driven) rather than via :func:`zlib.crc32`
so the algorithm itself is part of the reproduction; the test suite
cross-checks against zlib.
"""

from __future__ import annotations

from typing import List

#: Reflected polynomial for IEEE CRC-32.
_POLYNOMIAL = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        value = byte
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLYNOMIAL
            else:
                value >>= 1
        table.append(value)
    return table


_TABLE = _build_table()


def crc32(data: bytes, initial: int = 0) -> int:
    """IEEE CRC-32 of ``data`` (matches ``zlib.crc32``)."""
    crc = initial ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def fcs_of(frame_body: bytes) -> bytes:
    """The 4-byte FCS for a MAC header+body, little-endian as on the wire."""
    return crc32(frame_body).to_bytes(4, "little")


def append_fcs(frame_body: bytes) -> bytes:
    """Return ``frame_body`` with its FCS appended (the on-air PSDU)."""
    return frame_body + fcs_of(frame_body)


def fcs_is_valid(psdu: bytes) -> bool:
    """Check the trailing FCS of an on-air PSDU.

    Frames shorter than the FCS itself are malformed and invalid.
    """
    if len(psdu) < 4:
        return False
    body, fcs = psdu[:-4], psdu[-4:]
    return fcs_of(body) == fcs


def strip_fcs(psdu: bytes) -> bytes:
    """Drop a validated FCS; raises ``ValueError`` if the FCS is wrong."""
    if not fcs_is_valid(psdu):
        raise ValueError("FCS check failed")
    return psdu[:-4]
