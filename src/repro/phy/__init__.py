"""802.11 physical layer.

Implements the pieces of the PHY the paper's argument rests on:

* **timing** (:mod:`repro.phy.constants`) — SIFS is 10 µs at 2.4 GHz and
  16 µs at 5 GHz; the ACK must be on the air by then (Section 2.2);
* **FCS** (:mod:`repro.phy.crc`) — the CRC-32 check is the *only*
  validation performed before acknowledging;
* **rates** (:mod:`repro.phy.rates`) — ACKs go out at legacy basic rates
  (which is why the paper uses an ESP32 rather than the Intel 5300 CSI
  tool, footnote 3);
* **airtime** (:mod:`repro.phy.plcp`) — PLCP preamble/header plus symbol
  math, needed for medium occupancy and power accounting;
* **link quality** (:mod:`repro.phy.signal`) — path loss, SNR thresholds
  and an SNR→FER model for realistic loss;
* **radio** (:mod:`repro.phy.radio`) — the half-duplex radio state machine
  that attaches to :class:`repro.sim.medium.Medium`.
"""

from repro.phy.constants import (
    ACK_TIMEOUT,
    Band,
    PhyType,
    channel_to_frequency_hz,
    difs,
    sifs,
    slot_time,
)
from repro.phy.crc import crc32, fcs_is_valid, fcs_of
from repro.phy.plcp import ack_airtime, frame_airtime
from repro.phy.radio import Radio, RadioState
from repro.phy.rates import (
    BASIC_RATES_DSSS,
    BASIC_RATES_OFDM,
    OFDM_RATES,
    RateInfo,
    ack_rate_for,
    rate_info,
)
from repro.phy.signal import LogDistancePathLoss, SnrFerModel

__all__ = [
    "ACK_TIMEOUT",
    "BASIC_RATES_DSSS",
    "BASIC_RATES_OFDM",
    "Band",
    "LogDistancePathLoss",
    "OFDM_RATES",
    "PhyType",
    "Radio",
    "RadioState",
    "RateInfo",
    "SnrFerModel",
    "ack_airtime",
    "ack_rate_for",
    "channel_to_frequency_hz",
    "crc32",
    "difs",
    "fcs_is_valid",
    "fcs_of",
    "frame_airtime",
    "rate_info",
    "sifs",
    "slot_time",
]
