"""Link-budget models: path loss and SNR→frame-error conversion.

The wardriving survey (Section 3) exercises links from a few metres (the
victim tablet one room away) out to street-to-building distances, so the
medium needs a propagation model with an indoor/urban exponent and
wall-penetration loss, plus a frame-error model so that marginal links
lose frames and the probe logic has to retry — exactly why the paper's
scanner uses a verify thread instead of assuming delivery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.phy.rates import rate_info
from repro.sim.world import Position

try:  # Vectorized erfc when SciPy is present; scalar fallback otherwise.
    from scipy.special import erfc as _erfc_array
except ImportError:  # pragma: no cover - depends on the environment
    _erfc_array = None


def free_space_path_loss_db(distance_m, frequency_hz: float):
    """Friis free-space path loss from distance(s), clamped below 1 m.

    The array-accepting twin of
    :func:`repro.sim.medium.free_space_path_loss_db` (which takes
    :class:`Position` pairs): pass a scalar or an ndarray of distances
    and get the loss back in the same shape.  The medium's delivery hot
    path keeps its scalar ``math.log10`` form so seeded traces stay
    byte-identical across revisions; this form is for bulk evaluation
    (budget sweeps, benchmarks, the SoA gate's sanity tests) and agrees
    with the scalar form to within one ULP.
    """
    wavelength = 299_792_458.0 / frequency_hz
    distance = np.maximum(distance_m, 1.0)
    return 20.0 * np.log10(4.0 * math.pi * distance / wavelength)


@dataclass
class LogDistancePathLoss:
    """Log-distance path loss with optional wall penetration.

    ``PL(d) = PL(d0) + 10·n·log10(d/d0) + walls·wall_loss_db``

    Defaults model a 2.4 GHz urban-residential environment: ~40 dB at the
    1 m reference and an exponent of 3.0 (between free space and heavy
    indoor clutter).
    """

    exponent: float = 3.0
    reference_loss_db: float = 40.0
    reference_distance_m: float = 1.0
    wall_loss_db: float = 6.0
    walls: int = 0

    def __call__(self, tx: Position, rx: Position) -> float:
        distance = max(tx.distance_to(rx), self.reference_distance_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance_m
        )
        return loss + self.walls * self.wall_loss_db

    def batch(self, distances_m) -> np.ndarray:
        """Vectorized loss for an array of distances (same formula)."""
        distance = np.maximum(np.asarray(distances_m, dtype=float),
                              self.reference_distance_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * np.log10(
            distance / self.reference_distance_m
        )
        return loss + self.walls * self.wall_loss_db

    def max_range_m(self, tx_power_dbm: float, sensitivity_dbm: float) -> float:
        """Distance at which RSSI falls to the receiver sensitivity."""
        budget = tx_power_dbm - sensitivity_dbm - self.reference_loss_db
        budget -= self.walls * self.wall_loss_db
        if budget <= 0.0:
            return self.reference_distance_m
        return self.reference_distance_m * 10.0 ** (budget / (10.0 * self.exponent))


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def bit_error_rate(snr_db: float, modulation: str) -> float:
    """Approximate uncoded BER for the modulations in our rate tables.

    Standard AWGN approximations: coherent BPSK/QPSK and square M-QAM with
    Gray mapping.  DSSS modulations reuse the BPSK/QPSK curves; CCK is
    approximated as QPSK with 3 dB spreading gain.
    """
    snr = 10.0 ** (snr_db / 10.0)
    if modulation in ("BPSK", "DBPSK"):
        return _q_function(math.sqrt(2.0 * snr))
    if modulation in ("QPSK", "DQPSK"):
        return _q_function(math.sqrt(snr))
    if modulation == "CCK":
        return _q_function(math.sqrt(2.0 * snr))
    if modulation == "16-QAM":
        return 0.75 * _q_function(math.sqrt(snr / 5.0))
    if modulation == "64-QAM":
        return (7.0 / 12.0) * _q_function(math.sqrt(snr / 21.0))
    raise ValueError(f"unknown modulation {modulation!r}")


@dataclass
class SnrFerModel:
    """Convert (SNR, rate, length) into a frame-error probability.

    ``FER = 1 − (1 − BER_coded)^(8·L)`` with a crude coding gain applied to
    the SNR for convolutionally-coded OFDM rates.  The model is monotone in
    SNR and length, which is what the tests and the survey realism rely on;
    absolute values are textbook approximations.
    """

    coding_gain_db: float = 4.0

    def __call__(self, snr_db: float, rate_mbps: float, length_bytes: int) -> float:
        info = rate_info(rate_mbps)
        effective_snr = snr_db
        if info.coding_rate != "-":
            effective_snr += self.coding_gain_db
        ber = bit_error_rate(effective_snr, info.modulation)
        if ber <= 0.0:
            return 0.0
        bits = max(8 * length_bytes, 1)
        fer = 1.0 - (1.0 - min(ber, 0.5)) ** bits
        return min(max(fer, 0.0), 1.0)

    def batch(
        self, snr_db, rate_mbps: float, length_bytes: int
    ) -> np.ndarray:
        """Vectorized FER for an array of SNRs at one (rate, length).

        Mirrors :meth:`__call__` elementwise.  With SciPy present the
        Q-function runs vectorized (agreement within a few ULP of the
        scalar ``math.erfc`` form); without it, elements fall back to
        the scalar path.  The medium's delivery path memoizes the
        scalar form per distinct SNR, which keeps seeded traces
        byte-identical — this form serves bulk evaluation and the
        model-level tests.
        """
        snr_arr = np.atleast_1d(np.asarray(snr_db, dtype=float))
        if _erfc_array is None:
            return np.array(
                [self(s, rate_mbps, length_bytes) for s in snr_arr.tolist()]
            )
        info = rate_info(rate_mbps)
        effective = snr_arr.copy()
        if info.coding_rate != "-":
            effective += self.coding_gain_db
        snr = 10.0 ** (effective / 10.0)
        modulation = info.modulation
        if modulation in ("BPSK", "DBPSK", "CCK"):
            ber = 0.5 * _erfc_array(np.sqrt(2.0 * snr) / math.sqrt(2.0))
        elif modulation in ("QPSK", "DQPSK"):
            ber = 0.5 * _erfc_array(np.sqrt(snr) / math.sqrt(2.0))
        elif modulation == "16-QAM":
            ber = 0.75 * 0.5 * _erfc_array(np.sqrt(snr / 5.0) / math.sqrt(2.0))
        elif modulation == "64-QAM":
            ber = (7.0 / 12.0) * 0.5 * _erfc_array(
                np.sqrt(snr / 21.0) / math.sqrt(2.0)
            )
        else:  # pragma: no cover - rate tables only carry the above
            raise ValueError(f"unknown modulation {modulation!r}")
        bits = max(8 * length_bytes, 1)
        fer = 1.0 - (1.0 - np.minimum(ber, 0.5)) ** bits
        fer = np.clip(fer, 0.0, 1.0)
        fer[ber <= 0.0] = 0.0
        return fer
