"""Link-budget models: path loss and SNR→frame-error conversion.

The wardriving survey (Section 3) exercises links from a few metres (the
victim tablet one room away) out to street-to-building distances, so the
medium needs a propagation model with an indoor/urban exponent and
wall-penetration loss, plus a frame-error model so that marginal links
lose frames and the probe logic has to retry — exactly why the paper's
scanner uses a verify thread instead of assuming delivery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.phy.rates import rate_info
from repro.sim.world import Position


@dataclass
class LogDistancePathLoss:
    """Log-distance path loss with optional wall penetration.

    ``PL(d) = PL(d0) + 10·n·log10(d/d0) + walls·wall_loss_db``

    Defaults model a 2.4 GHz urban-residential environment: ~40 dB at the
    1 m reference and an exponent of 3.0 (between free space and heavy
    indoor clutter).
    """

    exponent: float = 3.0
    reference_loss_db: float = 40.0
    reference_distance_m: float = 1.0
    wall_loss_db: float = 6.0
    walls: int = 0

    def __call__(self, tx: Position, rx: Position) -> float:
        distance = max(tx.distance_to(rx), self.reference_distance_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance_m
        )
        return loss + self.walls * self.wall_loss_db

    def max_range_m(self, tx_power_dbm: float, sensitivity_dbm: float) -> float:
        """Distance at which RSSI falls to the receiver sensitivity."""
        budget = tx_power_dbm - sensitivity_dbm - self.reference_loss_db
        budget -= self.walls * self.wall_loss_db
        if budget <= 0.0:
            return self.reference_distance_m
        return self.reference_distance_m * 10.0 ** (budget / (10.0 * self.exponent))


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def bit_error_rate(snr_db: float, modulation: str) -> float:
    """Approximate uncoded BER for the modulations in our rate tables.

    Standard AWGN approximations: coherent BPSK/QPSK and square M-QAM with
    Gray mapping.  DSSS modulations reuse the BPSK/QPSK curves; CCK is
    approximated as QPSK with 3 dB spreading gain.
    """
    snr = 10.0 ** (snr_db / 10.0)
    if modulation in ("BPSK", "DBPSK"):
        return _q_function(math.sqrt(2.0 * snr))
    if modulation in ("QPSK", "DQPSK"):
        return _q_function(math.sqrt(snr))
    if modulation == "CCK":
        return _q_function(math.sqrt(2.0 * snr))
    if modulation == "16-QAM":
        return 0.75 * _q_function(math.sqrt(snr / 5.0))
    if modulation == "64-QAM":
        return (7.0 / 12.0) * _q_function(math.sqrt(snr / 21.0))
    raise ValueError(f"unknown modulation {modulation!r}")


@dataclass
class SnrFerModel:
    """Convert (SNR, rate, length) into a frame-error probability.

    ``FER = 1 − (1 − BER_coded)^(8·L)`` with a crude coding gain applied to
    the SNR for convolutionally-coded OFDM rates.  The model is monotone in
    SNR and length, which is what the tests and the survey realism rely on;
    absolute values are textbook approximations.
    """

    coding_gain_db: float = 4.0

    def __call__(self, snr_db: float, rate_mbps: float, length_bytes: int) -> float:
        info = rate_info(rate_mbps)
        effective_snr = snr_db
        if info.coding_rate != "-":
            effective_snr += self.coding_gain_db
        ber = bit_error_rate(effective_snr, info.modulation)
        if ber <= 0.0:
            return 0.0
        bits = max(8 * length_bytes, 1)
        fer = 1.0 - (1.0 - min(ber, 0.5)) ** bits
        return min(max(fer, 0.0), 1.0)
