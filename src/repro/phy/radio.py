"""Half-duplex radio state machine.

A :class:`Radio` is the glue between a device and the shared medium.  It
owns the antenna position (static, or a callable for the wardriving
vehicle), the TX power, the channel, and the awake/asleep/transmitting
state that the power model (:mod:`repro.devices.power_model`) integrates
over time to produce the Figure 6 consumption curve.

Frame semantics live one layer up: the radio delivers every finished
:class:`~repro.sim.medium.Reception` to its ``frame_handler`` (normally
the MAC's ACK engine) and, while asleep, delivers nothing — which is how
the power-save threshold of ~10 packets/s emerges in the battery-drain
experiment.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Union

from repro.phy.plcp import frame_airtime
from repro.sim.medium import Medium, Reception, Transmission
from repro.sim.world import Position

PositionProvider = Union[Position, Callable[[float], Position]]


class RadioState(enum.Enum):
    """Power-relevant radio states."""

    SLEEP = "sleep"
    IDLE = "idle"  # awake, listening
    TX = "tx"


#: Module-level alias: the sleep check runs once per finished arrival, and
#: an enum-member attribute lookup there is measurable at wardrive scale.
_SLEEP = RadioState.SLEEP


class Radio:
    """One 802.11 radio attached to a medium.

    Parameters
    ----------
    name:
        Unique identifier on the medium (we use the device's MAC string).
    medium:
        The shared :class:`~repro.sim.medium.Medium`.
    position:
        Either a fixed :class:`Position` or a ``f(time) -> Position``
        callable for mobile radios.
    channel:
        802.11 channel number.
    tx_power_dbm / rx_sensitivity_dbm:
        Link-budget endpoints; defaults are typical for consumer gear.
    """

    def __init__(
        self,
        name: str,
        medium: Medium,
        position: PositionProvider,
        channel: int = 6,
        tx_power_dbm: float = 20.0,
        rx_sensitivity_dbm: float = -92.0,
    ) -> None:
        self.name = name
        self.medium = medium
        self._channel = int(channel)
        self.tx_power_dbm = tx_power_dbm
        self.rx_sensitivity_dbm = rx_sensitivity_dbm
        self._position = position  # property setter fills static_position
        self._state = RadioState.IDLE
        self._state_listeners: List[Callable[[RadioState, float], None]] = []
        self._frame_handler: Optional[Callable[[Reception], None]] = None
        #: Lane-aware fast sink for the medium's batched reception path:
        #: ``f(lane, span, index) -> bool`` (True = arrival fully
        #: accounted for without a Reception).  The hook owns the whole
        #: per-arrival radio contract — sleep drop and the
        #: ``frames_delivered`` bump included — so the medium may cache
        #: it directly as the delivery sink.  Installed alongside
        #: ``frame_handler`` by the ACK engine; assigning
        #: ``frame_handler`` clears it (and notifies the medium), so code
        #: that swaps in a bare scalar handler (tests do) can never leave
        #: a stale fast path behind.
        self.frame_handler_batch: Optional[Callable[[int, object, int], bool]] = None
        #: Receive MAC as a 48-bit big-endian integer, published by the
        #: ACK engine for the medium's vectorized address pre-filter;
        #: ``None`` until a MAC layer claims the radio.
        self.rx_mac_u64: Optional[int] = None
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped_asleep = 0
        medium.attach(self)

    # ------------------------------------------------------------------
    # RadioPort protocol
    # ------------------------------------------------------------------
    @property
    def channel(self) -> int:
        return self._channel

    @channel.setter
    def channel(self, channel: int) -> None:
        """Retune; the medium's per-channel index is kept in sync."""
        channel = int(channel)
        if channel == self._channel:
            return
        self._channel = channel
        self.medium.retune(self.name, channel)

    @property
    def _position(self) -> PositionProvider:
        return self._position_provider

    @_position.setter
    def _position(self, provider: PositionProvider) -> None:
        """Swapping the provider re-classifies the radio with the medium.

        ``static_position`` is the fast-path promise to the medium: a
        non-None value means ``current_position`` returns this exact
        Position until the provider is replaced again, so the medium can
        cache the radio's link budgets.  Code that takes over a radio's
        position mid-simulation (the localization attack walking its
        dongle between anchors) assigns ``_position`` and the caches are
        invalidated here.
        """
        self._position_provider = provider
        static = None if callable(provider) else provider
        self.static_position: Optional[Position] = static
        medium = getattr(self, "medium", None)
        if medium is not None:
            # No-op during __init__ (attach happens last).
            medium.reposition(self.name, static)

    def current_position(self, time: float) -> Position:
        provider = self._position_provider
        if callable(provider):
            return provider(time)
        return provider

    @property
    def frame_handler(self) -> Optional[Callable[[Reception], None]]:
        return self._frame_handler

    @frame_handler.setter
    def frame_handler(self, handler: Optional[Callable[[Reception], None]]) -> None:
        self._frame_handler = handler
        # A new scalar handler invalidates any batch fast path installed
        # for the previous one; the installer re-sets it afterwards.  The
        # medium caches the batch hook inside its delivery lists, so
        # clearing an installed hook must also bump the channel's cache
        # version (note_addressing_changed covers exactly that).
        if self.frame_handler_batch is not None:
            self.frame_handler_batch = None
            self.medium.note_addressing_changed(self.name)

    def on_reception(self, reception: Reception) -> None:
        """Medium callback: route a finished arrival to the MAC."""
        if self._state is _SLEEP:
            self.frames_dropped_asleep += 1
            return
        self.frames_delivered += 1
        handler = self._frame_handler
        if handler is not None:
            handler(reception)

    def on_reception_batch(self, lane: int, span, index: int) -> bool:
        """Lane-classified fast path for one arrival of a batched span.

        Returns ``True`` when the arrival is fully accounted for without
        a :class:`Reception` object.  An installed ``frame_handler_batch``
        owns the whole verdict — including the sleep drop and the
        ``frames_delivered`` bump, which lets the medium cache the hook
        itself as the delivery sink and skip this wrapper entirely.  With
        no hook installed, the sleep drop is applied here and everything
        else returns ``False`` to the byte-identical scalar path (which
        re-applies the sleep check, so nothing here may consume the
        arrival first).
        """
        handler = self.frame_handler_batch
        if handler is not None:
            return handler(lane, span, index)
        if self._state is _SLEEP:
            self.frames_dropped_asleep += 1
            return True
        return False

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @property
    def state(self) -> RadioState:
        return self._state

    @property
    def is_awake(self) -> bool:
        return self._state is not RadioState.SLEEP

    @property
    def is_transmitting(self) -> bool:
        return self._state is RadioState.TX

    def add_state_listener(self, listener: Callable[[RadioState, float], None]) -> None:
        """Subscribe to state changes (power accounting hooks in here)."""
        self._state_listeners.append(listener)

    def _set_state(self, state: RadioState) -> None:
        if state is self._state:
            return
        self._state = state
        now = self.medium.engine.now
        for listener in self._state_listeners:
            listener(state, now)

    def sleep(self) -> None:
        """Power the radio down; incoming frames are lost while asleep."""
        if self._state is RadioState.TX:
            raise RuntimeError("cannot sleep while transmitting")
        self._set_state(RadioState.SLEEP)

    def wake(self) -> None:
        """Power the radio up into the listening state."""
        if self._state is RadioState.SLEEP:
            self._set_state(RadioState.IDLE)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        frame: object,
        rate_mbps: float,
        length_bytes: Optional[int] = None,
    ) -> Transmission:
        """Send ``frame`` at ``rate_mbps``; airtime derives from its length.

        A sleeping radio transparently wakes to transmit (matching how
        power-save clients wake to send) and returns to the listening state
        when the frame ends; the caller decides when to sleep again.
        """
        if length_bytes is None:
            getter = getattr(frame, "wire_length", None)
            if getter is None:
                raise ValueError(
                    "frame has no wire_length(); pass length_bytes explicitly"
                )
            length_bytes = getter()
        duration = frame_airtime(length_bytes, rate_mbps)
        self._set_state(RadioState.TX)
        transmission = self.medium.transmit(
            self, frame, duration, self.tx_power_dbm, rate_mbps
        )
        self.frames_sent += 1
        # post() rather than call_after(): the handle is never cancelled,
        # and both allocate exactly one sequence number.
        engine = self.medium.engine
        engine.post(engine.clock._now + duration, self._tx_done)
        return transmission

    def _tx_done(self) -> None:
        if self._state is RadioState.TX:
            self._set_state(RadioState.IDLE)
