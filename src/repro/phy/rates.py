"""802.11 rate tables and ACK-rate selection.

Two facts from the paper live here:

* **Control responses use legacy basic rates.**  An ACK (or CTS) is sent at
  the highest rate in the basic-rate set that is less than or equal to the
  rate of the frame being acknowledged (IEEE 802.11-2016 §10.6.6.5).  This
  is why the paper measures CSI with an ESP32 — the Intel 5300 CSI tool
  cannot report CSI for legacy-rate frames (footnote 3).
* Rate-dependent **SNR requirements** drive the frame-error model used by
  the medium, so probes fail realistically at wardriving distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.phy.constants import PhyType


@dataclass(frozen=True)
class RateInfo:
    """One PHY rate."""

    mbps: float
    phy: PhyType
    modulation: str
    coding_rate: str
    bits_per_symbol: int  # data bits per OFDM symbol (N_DBPS); 0 for DSSS
    min_snr_db: float  # SNR needed for ~1% PER at 1000 B (textbook values)


#: Legacy OFDM (802.11a/g) rate set.  N_DBPS from IEEE 802.11-2016 Table 17-4.
OFDM_RATES: Dict[float, RateInfo] = {
    6.0: RateInfo(6.0, PhyType.OFDM, "BPSK", "1/2", 24, 5.0),
    9.0: RateInfo(9.0, PhyType.OFDM, "BPSK", "3/4", 36, 6.0),
    12.0: RateInfo(12.0, PhyType.OFDM, "QPSK", "1/2", 48, 8.0),
    18.0: RateInfo(18.0, PhyType.OFDM, "QPSK", "3/4", 72, 10.0),
    24.0: RateInfo(24.0, PhyType.OFDM, "16-QAM", "1/2", 96, 13.0),
    36.0: RateInfo(36.0, PhyType.OFDM, "16-QAM", "3/4", 144, 17.0),
    48.0: RateInfo(48.0, PhyType.OFDM, "64-QAM", "2/3", 192, 21.0),
    54.0: RateInfo(54.0, PhyType.OFDM, "64-QAM", "3/4", 216, 23.0),
}

#: DSSS/CCK (802.11b) rate set.
DSSS_RATES: Dict[float, RateInfo] = {
    1.0: RateInfo(1.0, PhyType.DSSS, "DBPSK", "-", 0, 2.0),
    2.0: RateInfo(2.0, PhyType.DSSS, "DQPSK", "-", 0, 4.0),
    5.5: RateInfo(5.5, PhyType.DSSS, "CCK", "-", 0, 6.0),
    11.0: RateInfo(11.0, PhyType.DSSS, "CCK", "-", 0, 8.0),
}

#: Mandatory (basic) rate sets used for control responses.
BASIC_RATES_OFDM: Tuple[float, ...] = (6.0, 12.0, 24.0)
BASIC_RATES_DSSS: Tuple[float, ...] = (1.0, 2.0)

ALL_RATES: Dict[float, RateInfo] = {**DSSS_RATES, **OFDM_RATES}


def rate_info(mbps: float) -> RateInfo:
    """Look up a rate; raises ``ValueError`` for unknown rates."""
    try:
        return ALL_RATES[float(mbps)]
    except KeyError:
        raise ValueError(f"unknown 802.11 rate {mbps!r} Mb/s") from None


def ack_rate_for(data_rate_mbps: float) -> float:
    """Rate at which the ACK/CTS responding to a frame is transmitted.

    The highest basic rate that does not exceed the eliciting frame's rate,
    chosen within the same PHY family; falls back to the lowest basic rate
    when the eliciting frame was already at the bottom of the table.
    """
    info = rate_info(data_rate_mbps)
    basics = BASIC_RATES_DSSS if info.phy is PhyType.DSSS else BASIC_RATES_OFDM
    eligible = [rate for rate in basics if rate <= data_rate_mbps]
    return max(eligible) if eligible else min(basics)


def is_legacy_rate(mbps: float) -> bool:
    """True for DSSS and legacy OFDM rates (everything in our tables).

    The Intel 5300 CSI-tool model (``repro.baselines.csitool``) refuses to
    produce CSI for frames at these rates, mirroring footnote 3.
    """
    return float(mbps) in ALL_RATES


def min_snr_db(mbps: float) -> float:
    """SNR required to decode ``mbps`` with high probability."""
    return rate_info(mbps).min_snr_db
