"""PLCP framing and airtime computation.

Airtime matters in three places of the reproduction:

* the medium needs each frame's on-air duration to model occupancy,
  collisions, and the SIFS-separated data→ACK exchange;
* the power model integrates TX/RX power over exact airtimes to produce the
  Figure 6 consumption curve;
* the defense analysis compares the SIFS budget with the time the receiver
  actually has between end-of-frame and the ACK deadline.

The OFDM math follows IEEE 802.11-2016 §17.4.3: a 20 µs preamble+SIGNAL,
then ``ceil((16 + 8·L + 6) / N_DBPS)`` 4 µs symbols for an L-byte PSDU.
"""

from __future__ import annotations

import math

from repro.phy.constants import (
    DSSS_LONG_PREAMBLE,
    HT_PREAMBLE_EXTRA,
    OFDM_PREAMBLE,
    OFDM_SERVICE_BITS,
    OFDM_SYMBOL,
    OFDM_TAIL_BITS,
    PhyType,
)
from repro.phy.rates import rate_info

#: Wire length of an ACK frame: Frame Control (2) + Duration (2) + RA (6)
#: + FCS (4).
ACK_LENGTH_BYTES = 14

#: Wire length of a CTS frame (same layout as an ACK).
CTS_LENGTH_BYTES = 14

#: Wire length of an RTS frame: FC + Duration + RA + TA + FCS.
RTS_LENGTH_BYTES = 20


def ofdm_symbol_count(length_bytes: int, bits_per_symbol: int) -> int:
    """Number of OFDM data symbols for an ``length_bytes`` PSDU."""
    if length_bytes < 0:
        raise ValueError(f"length must be non-negative, got {length_bytes!r}")
    payload_bits = OFDM_SERVICE_BITS + 8 * length_bytes + OFDM_TAIL_BITS
    return math.ceil(payload_bits / bits_per_symbol)


def frame_airtime(length_bytes: int, rate_mbps: float) -> float:
    """On-air duration (seconds) of an ``length_bytes`` PSDU at a rate.

    Covers DSSS (long preamble), legacy OFDM, and HT mixed-mode (legacy
    preamble plus HT-SIG/HT-STF/HT-LTF overhead).
    """
    info = rate_info(rate_mbps)
    if info.phy is PhyType.DSSS:
        return DSSS_LONG_PREAMBLE + (8.0 * length_bytes) / (rate_mbps * 1e6)
    preamble = OFDM_PREAMBLE
    if info.phy is PhyType.HT:
        preamble += HT_PREAMBLE_EXTRA
    symbols = ofdm_symbol_count(length_bytes, info.bits_per_symbol)
    return preamble + symbols * OFDM_SYMBOL


def ack_airtime(rate_mbps: float) -> float:
    """Airtime of an ACK at ``rate_mbps`` (a legacy basic rate)."""
    return frame_airtime(ACK_LENGTH_BYTES, rate_mbps)


def cts_airtime(rate_mbps: float) -> float:
    """Airtime of a CTS at ``rate_mbps``."""
    return frame_airtime(CTS_LENGTH_BYTES, rate_mbps)


def rts_airtime(rate_mbps: float) -> float:
    """Airtime of an RTS at ``rate_mbps``."""
    return frame_airtime(RTS_LENGTH_BYTES, rate_mbps)
