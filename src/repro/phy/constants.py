"""802.11 PHY timing constants.

These numbers carry the paper's central argument: the Short Interframe
Space — the deadline by which the receiver must start transmitting the
ACK — is 10 µs in the 2.4 GHz band and 16 µs in the 5 GHz band, while
validating a WPA2-protected frame takes 200–700 µs (Section 2.2).  A
standard-conformant receiver therefore *cannot* check frame legitimacy
before acknowledging.
"""

from __future__ import annotations

import enum

MICROSECOND = 1e-6


class Band(enum.Enum):
    """Operating band; SIFS and slot durations differ between them."""

    GHZ_2_4 = "2.4GHz"
    GHZ_5 = "5GHz"


class PhyType(enum.Enum):
    """PHY families we model.

    ``DSSS`` covers 802.11b-style long-preamble transmission; ``OFDM``
    covers 802.11a/g legacy rates, which is what ACKs and our fake null
    frames use; ``HT`` marks 802.11n data transmissions (airtime modelled
    with the OFDM symbol math plus the HT preamble).
    """

    DSSS = "dsss"
    OFDM = "ofdm"
    HT = "ht"


#: SIFS per band (seconds).  IEEE 802.11-2016 Table 19-25 / 17-21.
SIFS_BY_BAND = {
    Band.GHZ_2_4: 10 * MICROSECOND,
    Band.GHZ_5: 16 * MICROSECOND,
}

#: Slot time per band (seconds); 2.4 GHz value is the long (DSSS-compatible)
#: slot, 5 GHz the OFDM slot.
SLOT_BY_BAND = {
    Band.GHZ_2_4: 20 * MICROSECOND,
    Band.GHZ_5: 9 * MICROSECOND,
}

#: Time for the transmitter to conclude the ACK is not coming and schedule a
#: retransmission: SIFS + slot + PHY preamble detect time (approximation of
#: the standard's ACKTimeout).
ACK_TIMEOUT_EXTRA = 25 * MICROSECOND

#: OFDM PLCP preamble + SIGNAL field duration (16 µs preamble + 4 µs SIGNAL).
OFDM_PREAMBLE = 20 * MICROSECOND

#: OFDM symbol duration (3.2 µs FFT + 0.8 µs guard interval).
OFDM_SYMBOL = 4 * MICROSECOND

#: DSSS long PLCP preamble + header.
DSSS_LONG_PREAMBLE = 192 * MICROSECOND

#: Extra preamble time for HT (mixed-mode) transmissions on top of OFDM.
HT_PREAMBLE_EXTRA = 12 * MICROSECOND

#: OFDM service (16) and tail (6) bits prepended/appended to the PSDU.
OFDM_SERVICE_BITS = 16
OFDM_TAIL_BITS = 6


def sifs(band: Band) -> float:
    """SIFS for ``band`` in seconds."""
    return SIFS_BY_BAND[band]


def slot_time(band: Band) -> float:
    """Slot time for ``band`` in seconds."""
    return SLOT_BY_BAND[band]


def difs(band: Band) -> float:
    """DIFS = SIFS + 2 × slot."""
    return sifs(band) + 2.0 * slot_time(band)


def ack_timeout(band: Band) -> float:
    """How long a transmitter waits for an ACK before declaring loss."""
    return sifs(band) + ACK_TIMEOUT_EXTRA


#: Convenience alias used across the code base (2.4 GHz ACK timeout).
ACK_TIMEOUT = ack_timeout(Band.GHZ_2_4)


def channel_to_frequency_hz(channel: int) -> float:
    """Centre frequency of a 2.4/5 GHz channel number.

    Channels 1–13 map to 2.4 GHz (2407 + 5·n MHz, channel 14 special-cased);
    channels 32–177 map to the 5 GHz band (5000 + 5·n MHz).
    """
    if 1 <= channel <= 13:
        return (2407 + 5 * channel) * 1e6
    if channel == 14:
        return 2484 * 1e6
    if 32 <= channel <= 177:
        return (5000 + 5 * channel) * 1e6
    raise ValueError(f"unknown channel number {channel!r}")


def band_of_channel(channel: int) -> Band:
    """Which band a channel number lives in."""
    if 1 <= channel <= 14:
        return Band.GHZ_2_4
    if 32 <= channel <= 177:
        return Band.GHZ_5
    raise ValueError(f"unknown channel number {channel!r}")
