"""Polite WiFi: the paper's contribution.

The primitive is :class:`~repro.core.probe.PoliteWiFiProbe` — inject a
fake frame at a device that has never heard of you, and observe that it
acknowledges.  On top of it:

* :mod:`repro.core.injector` / :mod:`repro.core.monitor` — Scapy-style
  fake-frame crafting + streaming, and ACK correlation;
* :mod:`repro.core.wardrive` — the Section 3 three-stage survey pipeline
  (discover / inject / verify) over the synthetic city;
* :mod:`repro.core.keystroke` — the Section 4.1 keystroke/activity
  inference attack (150 fake frames/s, ACK CSI, no network membership);
* :mod:`repro.core.battery` — the Section 4.2 battery-drain attack and
  the Figure 6 power sweep;
* :mod:`repro.core.sensing_app` — the Section 4.3 single-device sensing
  opportunity (modify one hub, sense through everyone's ACKs);
* :mod:`repro.core.defenses` — the Section 2.2 "why this is not
  preventable" analysis, quantified.
"""

from repro.core.battery import BatteryDrainAttack, PowerSweepPoint
from repro.core.defenses import DefenseAnalysis, DeadlineRow
from repro.core.injector import FakeFrameInjector, InjectionStream
from repro.core.keystroke import KeystrokeInferenceAttack, KeystrokeAttackResult
from repro.core.localization import (
    AckRangingSensor,
    LocalizationAttack,
    LocalizationResult,
    RangingMeasurement,
    trilaterate,
)
from repro.core.monitor import AckMonitor
from repro.core.probe import PoliteWiFiProbe, ProbeResult
from repro.core.sensing_app import SingleDeviceSensingHub
from repro.core.wardrive import WardrivePipeline, WardriveConfig

__all__ = [
    "AckMonitor",
    "AckRangingSensor",
    "LocalizationAttack",
    "LocalizationResult",
    "RangingMeasurement",
    "trilaterate",
    "BatteryDrainAttack",
    "DeadlineRow",
    "DefenseAnalysis",
    "FakeFrameInjector",
    "InjectionStream",
    "KeystrokeAttackResult",
    "KeystrokeInferenceAttack",
    "PoliteWiFiProbe",
    "PowerSweepPoint",
    "ProbeResult",
    "SingleDeviceSensingHub",
    "WardriveConfig",
    "WardrivePipeline",
]
