"""Keystroke/activity inference via ACK CSI (Section 4.1, Figure 5).

The attack, as the paper runs it: an ESP32 in a *different room*, with no
access to the victim's network and no key, sends 150 fake frames per
second at a Surface Pro and measures the CSI of the ACKs.  The amplitude
of subcarrier 17 is flat while the tablet lies on the ground, churns when
a user picks it up, wobbles gently while held, and bursts while typed on.

:class:`KeystrokeInferenceAttack` wires the injector stream to an ESP32
CSI sniffer, exposes the Figure 5 amplitude series, and runs the sensing
pipeline (segmentation + activity classification) over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.channel.motion import ScheduledMotion
from repro.core.injector import FakeFrameInjector, InjectionStream
from repro.devices.esp import Esp32CsiSniffer
from repro.mac.addresses import ATTACKER_FAKE_MAC, MacAddress
from repro.sensing.csi_processing import CsiSeries, hampel_filter, resample_uniform
from repro.sensing.features import WindowFeatures, extract_features, sliding_windows
from repro.sensing.keystroke_classifier import ActivityClassifier, ActivityLabel
from repro.sensing.segmentation import ActivitySegment, segment_by_variance

#: The paper's injection rate for this attack.
PAPER_INJECTION_RATE_PPS = 150.0

#: The subcarrier Figure 5 plots.
PAPER_SUBCARRIER = 17


@dataclass
class KeystrokeAttackResult:
    """Everything the attack extracts from one recording."""

    series: CsiSeries
    frames_injected: int
    acks_measured: int
    segments: List[ActivitySegment] = field(default_factory=list)
    window_labels: List[Tuple[float, float, ActivityLabel]] = field(
        default_factory=list
    )

    @property
    def measurement_rate_hz(self) -> float:
        return self.series.mean_rate_hz

    @property
    def ack_yield(self) -> float:
        """ACKs measured per frame injected (loss-adjusted)."""
        if self.frames_injected == 0:
            return 0.0
        return self.acks_measured / self.frames_injected

    def labels_between(self, start: float, end: float) -> List[ActivityLabel]:
        return [
            label
            for w_start, w_end, label in self.window_labels
            if w_start < end and w_end > start
        ]


class KeystrokeInferenceAttack:
    """150 fake frames/s + ACK CSI + sensing pipeline."""

    def __init__(
        self,
        esp32: Esp32CsiSniffer,
        victim_mac: MacAddress,
        fake_source: MacAddress = ATTACKER_FAKE_MAC,
        rate_pps: float = PAPER_INJECTION_RATE_PPS,
        subcarrier: int = PAPER_SUBCARRIER,
    ) -> None:
        if esp32.expected_ack_ra != MacAddress(fake_source):
            raise ValueError(
                "the ESP32 sniffer must expect ACKs to the spoofed source "
                "(construct it with expected_ack_ra=fake_source)"
            )
        self.esp32 = esp32
        self.victim_mac = MacAddress(victim_mac)
        self.rate_pps = rate_pps
        self.subcarrier = subcarrier
        self.injector = FakeFrameInjector(esp32, fake_source)
        self._stream: Optional[InjectionStream] = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_s: float) -> KeystrokeAttackResult:
        """Inject for ``duration_s`` and collect the CSI recording."""
        engine = self.esp32.engine
        self.esp32.clear()
        self._stream = self.injector.start_stream(self.victim_mac, self.rate_pps)
        engine.run_until(engine.now + duration_s)
        self._stream.stop()
        return self._collect(self._stream.frames_sent)

    def _collect(self, frames_injected: int) -> KeystrokeAttackResult:
        ack_samples = [s for s in self.esp32.samples if s.is_ack]
        subcarrier_index = _subcarrier_index(self.esp32, self.subcarrier)
        times = np.array([s.time for s in ack_samples])
        amplitudes = np.array([s.amplitude(subcarrier_index) for s in ack_samples])
        series = CsiSeries(times, amplitudes, self.subcarrier)
        return KeystrokeAttackResult(
            series=series,
            frames_injected=frames_injected,
            acks_measured=len(ack_samples),
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @staticmethod
    def analyze(
        result: KeystrokeAttackResult,
        classifier: Optional[ActivityClassifier] = None,
        resample_hz: float = 50.0,
        window_s: float = 2.0,
        step_s: float = 1.0,
    ) -> KeystrokeAttackResult:
        """Fill in segmentation (and classification, if a trained
        classifier is supplied) on a collected recording."""
        if len(result.series) < 8:
            return result
        cleaned = CsiSeries(
            result.series.times,
            hampel_filter(result.series.amplitudes),
            result.series.subcarrier,
        )
        uniform = resample_uniform(cleaned, resample_hz)
        result.segments = segment_by_variance(uniform)
        if classifier is not None and classifier.is_fitted:
            labels = []
            for window in sliding_windows(uniform, window_s, step_s):
                features = extract_features(window)
                labels.append(
                    (features.start, features.end, classifier.predict(features))
                )
            result.window_labels = labels
        return result

    @staticmethod
    def training_windows(
        series: CsiSeries,
        scenario: ScheduledMotion,
        resample_hz: float = 50.0,
        window_s: float = 2.0,
        step_s: float = 1.0,
    ) -> List[Tuple[WindowFeatures, ActivityLabel]]:
        """Label windows of a calibration recording by the ground-truth
        motion timeline (windows straddling a transition are skipped)."""
        cleaned = CsiSeries(
            series.times, hampel_filter(series.amplitudes), series.subcarrier
        )
        uniform = resample_uniform(cleaned, resample_hz)
        samples: List[Tuple[WindowFeatures, ActivityLabel]] = []
        for window in sliding_windows(uniform, window_s, step_s):
            start_label = scenario.label_at(float(window.times[0]))
            end_label = scenario.label_at(float(window.times[-1]))
            if start_label != end_label:
                continue
            try:
                label = ActivityLabel.from_string(start_label)
            except ValueError:
                continue
            samples.append((extract_features(window), label))
        return samples


def _subcarrier_index(esp32: Esp32CsiSniffer, subcarrier: int) -> int:
    """Array index of a subcarrier number in the sniffer's CSI vectors."""
    from repro.channel.csi import Subcarriers

    return Subcarriers().array_index(subcarrier)
