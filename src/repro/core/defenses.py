"""Why Polite WiFi is not preventable (Section 2.2, quantified).

Three results, each runnable as an experiment:

1. **The deadline analysis.**  The ACK must start one SIFS (10/16 µs)
   after the frame ends; validating a WPA2 frame takes 200–700 µs.  The
   deadline table sweeps decoder classes × frame sizes and reports the
   margin — negative by 1–2 orders of magnitude everywhere, including a
   hypothetical 10×-faster ASIC.

2. **The checking-device experiment.**  A strawman receiver that refuses
   to ACK until validation completes is simulated against a *legitimate*
   transmitter: every ACK misses the timeout, the transmitter
   retransmits every frame to exhaustion, and goodput collapses.  A
   standard that waited for validation would break WiFi, not fix it.

3. **The RTS/CTS fallback.**  Even a receiver with an instant, perfect
   validator must answer RTS with CTS (control frames cannot be
   encrypted — every neighbour must parse them for channel reservation).
   The probe still gets its response; only the frame type changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.timing_model import DecodeTimingModel, DecoderClass
from repro.mac.ack_engine import AckEngineConfig
from repro.phy.constants import Band, sifs

#: Frame sizes swept in the deadline table: a null frame, a small packet,
#: a typical TCP segment, an MTU-sized frame.
DEADLINE_FRAME_SIZES = (0, 100, 576, 1500)


@dataclass(frozen=True)
class DeadlineRow:
    """One row of the SIFS-vs-decode-time table."""

    decoder_class: DecoderClass
    payload_bytes: int
    band: Band
    sifs_s: float
    decode_time_s: float

    @property
    def meets_deadline(self) -> bool:
        return self.decode_time_s <= self.sifs_s

    @property
    def overshoot_factor(self) -> float:
        """How many times over budget the validation lands."""
        return self.decode_time_s / self.sifs_s


@dataclass
class CheckingDeviceReport:
    """Outcome of the strawman validate-before-ACK receiver."""

    frames_offered: int
    frames_eventually_acked_in_time: int
    acks_sent_late: int
    retransmissions: int
    delivery_failures: int

    @property
    def timely_ack_rate(self) -> float:
        if self.frames_offered == 0:
            return 0.0
        return self.frames_eventually_acked_in_time / self.frames_offered


class DefenseAnalysis:
    """The Section 2.2 defense-feasibility toolkit."""

    # ------------------------------------------------------------------
    # 1. Deadline table
    # ------------------------------------------------------------------
    @staticmethod
    def deadline_table(
        decoder_classes: Optional[List[DecoderClass]] = None,
        payload_sizes: Tuple[int, ...] = DEADLINE_FRAME_SIZES,
        bands: Tuple[Band, ...] = (Band.GHZ_2_4, Band.GHZ_5),
    ) -> List[DeadlineRow]:
        classes = decoder_classes or list(DecoderClass)
        rows = []
        for decoder_class in classes:
            model = DecodeTimingModel(decoder_class)
            for band in bands:
                for size in payload_sizes:
                    rows.append(
                        DeadlineRow(
                            decoder_class=decoder_class,
                            payload_bytes=size,
                            band=band,
                            sifs_s=sifs(band),
                            decode_time_s=model.decode_time(size),
                        )
                    )
        return rows

    @staticmethod
    def any_feasible(rows: List[DeadlineRow]) -> bool:
        """Does *any* decoder/band/size combination meet the deadline?

        The paper's answer — and ours — is no.
        """
        return any(row.meets_deadline for row in rows)

    @staticmethod
    def render_deadline_table(rows: List[DeadlineRow]) -> str:
        lines = [
            f"{'decoder':<20}{'band':<8}{'payload':>8}  "
            f"{'SIFS':>9}{'decode':>11}{'over budget':>13}",
            "-" * 72,
        ]
        for row in rows:
            lines.append(
                f"{row.decoder_class.value:<20}{row.band.value:<8}"
                f"{row.payload_bytes:>7}B  "
                f"{row.sifs_s * 1e6:>7.1f}us"
                f"{row.decode_time_s * 1e6:>9.1f}us"
                f"{row.overshoot_factor:>11.1f}x"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # 2. Checking-device strawman configuration
    # ------------------------------------------------------------------
    @staticmethod
    def checking_device_config(
        band: Band = Band.GHZ_2_4,
        decoder_class: DecoderClass = DecoderClass.MAINSTREAM,
        temporal_key: Optional[bytes] = None,
    ) -> AckEngineConfig:
        """An ACK-engine config for the hypothetical device that validates
        before acknowledging.  Plug into a Device's ``ack_config``."""
        return AckEngineConfig(
            band=band,
            validate_before_ack=True,
            validator=DecodeTimingModel(decoder_class, temporal_key=temporal_key),
        )

    @staticmethod
    def summarize_checking_device(
        frames_offered: int,
        late_acks: int,
        suppressed: int,
        retransmissions: int,
        delivery_failures: int,
    ) -> CheckingDeviceReport:
        return CheckingDeviceReport(
            frames_offered=frames_offered,
            frames_eventually_acked_in_time=max(
                frames_offered - late_acks - suppressed, 0
            ),
            acks_sent_late=late_acks,
            retransmissions=retransmissions,
            delivery_failures=delivery_failures,
        )

    # ------------------------------------------------------------------
    # 3. RTS/CTS fallback arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def control_frames_encryptable() -> bool:
        """Control frames cannot be encrypted: every nearby device —
        associated or not — must parse RTS/CTS to honour channel
        reservation.  (802.11w protects *management* frames only.)"""
        return False

    @staticmethod
    def required_speedup_for_deadline(
        decoder_class: DecoderClass = DecoderClass.MAINSTREAM,
        payload_bytes: int = 0,
        band: Band = Band.GHZ_2_4,
    ) -> float:
        """How many times faster validation would need to become to fit in
        SIFS — and even then, the RTS/CTS path remains open."""
        model = DecodeTimingModel(decoder_class)
        return model.decode_time(payload_bytes) / sifs(band)
