"""Fake-frame crafting and injection (the Scapy role).

The paper: "we develop a simple python program that uses the Scapy
library to create fake frames ... the only valid information in the frame
is the destination MAC address.  The transmitter MAC address is set to
the fake MAC address (aa:bb:bb:bb:bb:bb), and the frame has no payload
(i.e., null frame) and is not encrypted."

:class:`FakeFrameInjector` crafts exactly those frames (and the RTS
variant of Section 2.2, and arbitrary garbage-payload data frames for the
robustness tests), serializes them through the real wire format, and
transmits them through a monitor-mode dongle — one-shot or as a paced
stream for the 150/900 frames-per-second attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.devices.dongle import MonitorDongle
from repro.mac.addresses import ATTACKER_FAKE_MAC, MacAddress
from repro.mac.duration import data_frame_duration_us, rts_duration_us
from repro.mac.frames import (
    DataFrame,
    Frame,
    NullDataFrame,
    QosNullFrame,
    RtsFrame,
)
from repro.phy.constants import Band


@dataclass
class InjectionStream:
    """A running paced injection (one target, fixed rate)."""

    target: MacAddress
    rate_pps: float
    frames_sent: int = 0
    running: bool = True

    def stop(self) -> None:
        self.running = False


class FakeFrameInjector:
    """Crafts and transmits fake 802.11 frames from spoofed addresses."""

    def __init__(
        self,
        dongle: MonitorDongle,
        fake_source: MacAddress = ATTACKER_FAKE_MAC,
        band: Band = Band.GHZ_2_4,
        rate_mbps: float = 6.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.dongle = dongle
        self.fake_source = MacAddress(fake_source)
        self.band = band
        self.rate_mbps = rate_mbps
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._sequence = int(self._rng.integers(0, 4096))
        self.total_injected = 0

    def _next_sequence(self) -> int:
        self._sequence = (self._sequence + 1) & 0x0FFF
        return self._sequence

    # ------------------------------------------------------------------
    # Frame crafting
    # ------------------------------------------------------------------
    def craft_null(self, target: MacAddress) -> Frame:
        """The paper's fake frame: a null function with a spoofed source,
        a plausible NAV, no payload, no encryption."""
        frame = NullDataFrame(
            addr1=MacAddress(target),
            addr2=self.fake_source,
            addr3=self.fake_source,
            duration_us=data_frame_duration_us(self.rate_mbps, self.band),
        )
        frame.sequence = self._next_sequence()
        return frame

    def craft_qos_null(self, target: MacAddress) -> Frame:
        frame = QosNullFrame(
            addr1=MacAddress(target),
            addr2=self.fake_source,
            addr3=self.fake_source,
            duration_us=data_frame_duration_us(self.rate_mbps, self.band),
        )
        frame.sequence = self._next_sequence()
        return frame

    def craft_rts(self, target: MacAddress, reserve_bytes: int = 1500) -> Frame:
        """The RTS variant: control frames cannot be encrypted, so even a
        hypothetical fast validator cannot suppress the CTS response."""
        return RtsFrame(
            ra=MacAddress(target),
            ta=self.fake_source,
            duration_us=rts_duration_us(reserve_bytes, self.rate_mbps, self.band),
        )

    def craft_garbage_data(self, target: MacAddress, length: int = 64) -> Frame:
        """A data frame whose payload is random bytes — still ACKed,
        because payload validity is never checked before the ACK."""
        body = bytes(int(b) for b in self._rng.integers(0, 256, size=length))
        frame = DataFrame(
            addr1=MacAddress(target),
            addr2=self.fake_source,
            addr3=self.fake_source,
            body=body,
            duration_us=data_frame_duration_us(self.rate_mbps, self.band),
        )
        frame.sequence = self._next_sequence()
        return frame

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def inject(self, frame: Frame) -> None:
        """One-shot injection through the dongle (serialized wire bytes)."""
        self.total_injected += 1
        self.dongle.inject(frame, self.rate_mbps)

    def inject_null(self, target: MacAddress) -> Frame:
        frame = self.craft_null(target)
        self.inject(frame)
        return frame

    def start_stream(
        self,
        target: MacAddress,
        rate_pps: float,
        kind: str = "null",
        on_inject: Optional[Callable[[Frame], None]] = None,
    ) -> InjectionStream:
        """Back-to-back fake frames at ``rate_pps`` until stopped.

        This is the engine of both headline attacks: 150 fps for keystroke
        inference, up to 900 fps for battery draining.  A small timing
        jitter (±5 % of the period) mirrors host-side pacing noise.
        """
        if rate_pps <= 0.0:
            raise ValueError("rate must be positive")
        crafters = {
            "null": self.craft_null,
            "qos_null": self.craft_qos_null,
            "rts": self.craft_rts,
            "data": self.craft_garbage_data,
        }
        try:
            crafter = crafters[kind]
        except KeyError:
            raise ValueError(f"unknown stream kind {kind!r}") from None
        stream = InjectionStream(target=MacAddress(target), rate_pps=rate_pps)
        period = 1.0 / rate_pps
        engine = self.dongle.engine

        def tick() -> None:
            if not stream.running:
                return
            frame = crafter(stream.target)
            self.inject(frame)
            stream.frames_sent += 1
            if on_inject is not None:
                on_inject(frame)
            jitter = float(self._rng.uniform(-0.05, 0.05)) * period
            engine.call_after(max(period + jitter, 1e-6), tick)

        engine.call_after(period, tick)
        return stream
