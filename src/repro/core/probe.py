"""The Polite WiFi probe: does this stranger answer?

One probe = inject a fake frame at a target, listen for the ACK that the
target's PHY must emit one SIFS later, retry a few times against channel
noise.  This is the primitive behind Figure 2, Table 1, and the 5,328-
device survey — the paper's core observable, packaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.injector import FakeFrameInjector
from repro.core.monitor import AckMonitor
from repro.mac.addresses import ATTACKER_FAKE_MAC, MacAddress
from repro.devices.dongle import MonitorDongle
from repro.phy.constants import Band, sifs
from repro.phy.plcp import ack_airtime, cts_airtime, frame_airtime
from repro.phy.rates import ack_rate_for
from repro.sim.medium import Reception

#: Timing slack beyond the deterministic frame + SIFS + response airtime
#: (propagation, scheduling quantization).
PROBE_WINDOW_SLACK = 100e-6


@dataclass
class ProbeResult:
    """Outcome of probing one target."""

    target: MacAddress
    responded: bool
    attempts: int
    elapsed_s: float
    ack_rssi_dbm: Optional[float] = None
    ack_latency_s: Optional[float] = None
    kind: str = "null"


class PoliteWiFiProbe:
    """Inject-and-verify against a single target.

    The probe machinery is asynchronous (everything in the simulator is);
    :meth:`probe` is a synchronous convenience that drives the engine
    until the verdict is in — the shape most tests and examples want.
    """

    def __init__(
        self,
        dongle: MonitorDongle,
        fake_source: MacAddress = ATTACKER_FAKE_MAC,
        band: Band = Band.GHZ_2_4,
        rate_mbps: float = 6.0,
        attempts: int = 3,
    ) -> None:
        self.dongle = dongle
        self.band = band
        self.rate_mbps = rate_mbps
        self.attempts = attempts
        self.injector = FakeFrameInjector(dongle, fake_source, band, rate_mbps)
        self.monitor = AckMonitor(dongle, fake_source)
        self.results: List[ProbeResult] = []

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def _response_window(self, frame_length: int, kind: str) -> float:
        """How long after injection the response can possibly arrive."""
        response_rate = ack_rate_for(self.rate_mbps)
        response_airtime = (
            cts_airtime(response_rate) if kind == "rts" else ack_airtime(response_rate)
        )
        return (
            frame_airtime(frame_length, self.rate_mbps)
            + sifs(self.band)
            + response_airtime
            + PROBE_WINDOW_SLACK
        )

    # ------------------------------------------------------------------
    # Asynchronous probe
    # ------------------------------------------------------------------
    def probe_async(
        self,
        target: MacAddress,
        on_result: Callable[[ProbeResult], None],
        kind: str = "null",
    ) -> None:
        """Probe ``target``; deliver a :class:`ProbeResult` when resolved."""
        target = MacAddress(target)
        engine = self.dongle.engine
        started = engine.now
        crafters = {
            "null": self.injector.craft_null,
            "qos_null": self.injector.craft_qos_null,
            "rts": self.injector.craft_rts,
            "data": self.injector.craft_garbage_data,
        }
        if kind not in crafters:
            raise ValueError(f"unknown probe kind {kind!r}")
        state = {"attempt": 0}

        def attempt() -> None:
            state["attempt"] += 1
            frame = crafters[kind](target)
            window = self._response_window(frame.wire_length(), kind)
            self.monitor.expect_ack(
                target,
                window,
                on_ack=lambda reception: finish(True, reception),
                on_timeout=retry_or_fail,
            )
            self.injector.inject(frame)

        def retry_or_fail() -> None:
            if state["attempt"] < self.attempts:
                # Brief pause between attempts, like a retransmitting NIC.
                engine.call_after(500e-6, attempt)
            else:
                finish(False, None)

        def finish(responded: bool, reception: Optional[Reception]) -> None:
            result = ProbeResult(
                target=target,
                responded=responded,
                attempts=state["attempt"],
                elapsed_s=engine.now - started,
                ack_rssi_dbm=reception.rssi_dbm if reception else None,
                ack_latency_s=(
                    reception.end - started if reception is not None else None
                ),
                kind=kind,
            )
            self.results.append(result)
            on_result(result)

        attempt()

    # ------------------------------------------------------------------
    # Synchronous convenience
    # ------------------------------------------------------------------
    def probe(self, target: MacAddress, kind: str = "null") -> ProbeResult:
        """Probe and drive the engine until the verdict is known."""
        outcome: List[ProbeResult] = []
        self.probe_async(target, outcome.append, kind)
        engine = self.dongle.engine
        # Worst case: all attempts time out, with inter-attempt pauses.
        horizon = engine.now + self.attempts * 0.05 + 0.1
        while not outcome and engine.now < horizon:
            if not engine.step():
                break
        if not outcome:
            raise RuntimeError("probe did not resolve (engine starved)")
        return outcome[0]

    def probe_all(
        self, targets: List[MacAddress], kind: str = "null"
    ) -> List[ProbeResult]:
        """Sequentially probe many targets (lab-bench style, Table 1)."""
        return [self.probe(target, kind) for target in targets]
