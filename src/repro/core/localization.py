"""Localization through ACK timing — the intro's localization threat.

The paper's introduction lists localization among the threats Polite WiFi
enables (later realized by the Wi-Peep follow-up work): because the ACK
departs a *fixed* SIFS after the frame ends, the attacker can use the
fake-frame → ACK round trip as a time-of-flight ranging primitive against
devices that never agreed to participate:

``RTT = frame_airtime + propagation + SIFS + ack_airtime + propagation``

Everything in that sum except the two propagation legs is known from the
standard, so ``distance = (RTT − deterministic) · c / 2``.  Individual
measurements are dominated by receive-timestamp jitter (tens of
nanoseconds ⇒ metres), but averaging over a burst of probes shrinks the
error as 1/√N, and ranging from three or more attacker positions
trilaterates the victim.

:class:`AckRangingSensor` produces per-burst distance estimates;
:func:`trilaterate` solves the multi-anchor position fix;
:class:`LocalizationAttack` composes the two into "fly around the
building, locate the devices inside".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.injector import FakeFrameInjector
from repro.devices.dongle import MonitorDongle
from repro.mac.addresses import ATTACKER_FAKE_MAC, MacAddress
from repro.mac.frames import Frame
from repro.phy.constants import Band, sifs
from repro.phy.plcp import ack_airtime, frame_airtime
from repro.phy.rates import ack_rate_for
from repro.sim.medium import Reception
from repro.sim.world import SPEED_OF_LIGHT, Position

#: Default one-sigma receive-timestamp jitter.  40 MHz sampling gives
#: 25 ns resolution; Wi-Peep-class hardware achieves tens of ns after
#: calibration.
DEFAULT_TIMESTAMP_JITTER_S = 25e-9


@dataclass
class RangingMeasurement:
    """Distance estimate from one burst of probes at one position."""

    target: MacAddress
    anchor: Position
    distance_m: float
    std_m: float
    samples: int

    @property
    def standard_error_m(self) -> float:
        if self.samples <= 1:
            return self.std_m
        return self.std_m / np.sqrt(self.samples)


class AckRangingSensor:
    """Fake-frame time-of-flight ranging through one monitor dongle."""

    def __init__(
        self,
        dongle: MonitorDongle,
        fake_source: MacAddress = ATTACKER_FAKE_MAC,
        band: Band = Band.GHZ_2_4,
        rate_mbps: float = 6.0,
        timestamp_jitter_s: float = DEFAULT_TIMESTAMP_JITTER_S,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.dongle = dongle
        self.fake_source = MacAddress(fake_source)
        self.band = band
        self.rate_mbps = rate_mbps
        self.timestamp_jitter_s = timestamp_jitter_s
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.injector = FakeFrameInjector(dongle, fake_source, band, rate_mbps)
        self._await_ack = False
        self._ack_end: Optional[float] = None
        dongle.add_listener(self._on_frame)

    def _on_frame(self, frame: Frame, reception: Reception) -> None:
        if self._await_ack and frame.is_ack and frame.addr1 == self.fake_source:
            self._ack_end = reception.end
            self._await_ack = False

    def _deterministic_span(self, frame_length: int) -> float:
        """The known part of the round trip (everything but propagation)."""
        response_rate = ack_rate_for(self.rate_mbps)
        return (
            frame_airtime(frame_length, self.rate_mbps)
            + sifs(self.band)
            + ack_airtime(response_rate)
        )

    def range_target(
        self,
        target: MacAddress,
        probes: int = 50,
        probe_spacing_s: float = 0.002,
    ) -> Optional[RangingMeasurement]:
        """Burst-probe ``target`` and estimate the distance.

        Runs the engine inline (like :meth:`PoliteWiFiProbe.probe`); each
        probe contributes one RTT sample unless it is lost.  Returns
        ``None`` when no probe was answered.
        """
        engine = self.dongle.engine
        distances: List[float] = []
        anchor = self.dongle.radio.current_position(engine.now)
        for _ in range(probes):
            frame = self.injector.craft_null(target)
            span = self._deterministic_span(frame.wire_length())
            t0 = engine.now
            self._await_ack = True
            self._ack_end = None
            self.injector.inject(frame)
            engine.run_until(t0 + span + 50e-6)
            self._await_ack = False
            if self._ack_end is None:
                continue
            observed = self._ack_end - t0
            observed += float(self._rng.normal(0.0, self.timestamp_jitter_s))
            flight = (observed - span) / 2.0
            distances.append(max(flight, 0.0) * SPEED_OF_LIGHT)
            engine.run_until(engine.now + probe_spacing_s)
        if not distances:
            return None
        return RangingMeasurement(
            target=MacAddress(target),
            anchor=anchor,
            distance_m=float(np.mean(distances)),
            std_m=float(np.std(distances)),
            samples=len(distances),
        )


def trilaterate(measurements: Sequence[RangingMeasurement]) -> Position:
    """Least-squares 2-D position fix from ≥3 ranging measurements.

    Uses the standard linearization: subtracting the first anchor's circle
    equation from the others yields a linear system in (x, y).  Anchors
    must not be collinear (the system is then singular and ``ValueError``
    is raised).  The z coordinate is taken from the mean anchor height —
    vertical resolution would need anchors at spread heights.
    """
    if len(measurements) < 3:
        raise ValueError("trilateration needs at least three measurements")
    reference = measurements[0]
    x0, y0 = reference.anchor.x, reference.anchor.y
    r0 = reference.distance_m
    rows = []
    rhs = []
    for m in measurements[1:]:
        xi, yi, ri = m.anchor.x, m.anchor.y, m.distance_m
        rows.append([2.0 * (xi - x0), 2.0 * (yi - y0)])
        rhs.append(r0**2 - ri**2 + xi**2 - x0**2 + yi**2 - y0**2)
    matrix = np.array(rows)
    vector = np.array(rhs)
    if np.linalg.matrix_rank(matrix) < 2:
        raise ValueError("anchors are collinear; cannot trilaterate")
    solution, *_ = np.linalg.lstsq(matrix, vector, rcond=None)
    z = float(np.mean([m.anchor.z for m in measurements]))
    return Position(float(solution[0]), float(solution[1]), z)


@dataclass
class LocalizationResult:
    target: MacAddress
    estimated: Position
    measurements: List[RangingMeasurement]
    truth: Optional[Position] = None

    @property
    def error_m(self) -> Optional[float]:
        if self.truth is None:
            return None
        # Horizontal error; height is not resolvable from coplanar anchors.
        return float(
            np.hypot(
                self.estimated.x - self.truth.x, self.estimated.y - self.truth.y
            )
        )


class LocalizationAttack:
    """Range a victim from several attacker positions and trilaterate.

    The dongle is repositioned between bursts (a walk or drone pass); in
    the simulator that is a mutable position provider.
    """

    def __init__(self, sensor: AckRangingSensor) -> None:
        self.sensor = sensor
        self._position = Position(0, 0)
        # Take over the dongle's position with a mutable provider.
        self.sensor.dongle.radio._position = lambda time: self._position

    def locate(
        self,
        target: MacAddress,
        anchor_positions: Sequence[Position],
        probes_per_anchor: int = 50,
        truth: Optional[Position] = None,
    ) -> LocalizationResult:
        measurements = []
        for anchor in anchor_positions:
            self._position = anchor
            measurement = self.sensor.range_target(target, probes=probes_per_anchor)
            if measurement is not None:
                measurements.append(measurement)
        if len(measurements) < 3:
            raise RuntimeError(
                f"only {len(measurements)} anchors produced ranges; need 3"
            )
        estimated = trilaterate(measurements)
        return LocalizationResult(
            target=MacAddress(target),
            estimated=estimated,
            measurements=measurements,
            truth=truth,
        )
