"""The Section 3 wardriving pipeline: discover → inject → verify.

The paper's survey implementation is a three-thread Scapy program on a
vehicle-mounted dongle: thread 1 sniffs and appends unseen MACs to a
target list, thread 2 sends fake frames to listed targets, thread 3
verifies the ACKs.  The event-driven equivalent here runs one
discover/inject/verify unit per channel (a wardriving rig with one
monitor dongle on each of channels 1/6/11), with the injector serializing
probes per dongle so ACK attribution by timing stays unambiguous.

Targets that fail all probe attempts while the vehicle is still moving
past them are re-queued and retried on later passes — the reason the
survey converges to the paper's 100 % response rate even though street
links drop frames.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.probe import PoliteWiFiProbe, ProbeResult
from repro.devices.dongle import MonitorDongle
from repro.mac.addresses import ATTACKER_FAKE_MAC, MacAddress
from repro.sim.engine import Engine
from repro.sim.world import DriveRoute
from repro.survey.city import SURVEY_CHANNELS, SyntheticCity
from repro.survey.results import SurveyResults
from repro.survey.scanner import DiscoveredDevice, PassiveScanner


@dataclass
class WardriveConfig:
    """Pipeline tuning."""

    fake_source: MacAddress = ATTACKER_FAKE_MAC
    probe_attempts: int = 4
    max_probe_rounds: int = 6
    injector_tick: float = 0.004
    #: ``"event"`` (default) wakes the injector only at tick-grid points
    #: that follow a state change (discovery, probe completion, channel
    #: hop) — thousands of events per survey instead of a fixed-rate
    #: poll's hundreds of thousands.  ``"poll"`` keeps the original
    #: fixed-rate loop.  Both serve targets at identical grid times and
    #: produce byte-identical seeded traces (pinned by tests).
    injector_mode: str = "event"
    vehicle_speed_mps: float = 11.0
    rig_height_m: float = 1.8  # dongle on the roof of the vehicle
    #: ``"multi"`` mounts one dongle per survey channel (a Kismet-style
    #: rig); ``"hopping"`` mounts a single dongle that cycles channels —
    #: the paper's actual hardware (one RTL8812AU).
    rig_mode: str = "multi"
    hop_dwell_s: float = 0.25


@dataclass
class _TargetState:
    record: DiscoveredDevice
    rounds: int = 0
    verified: bool = False


class WardrivePipeline:
    """Run the full survey over a synthetic city."""

    def __init__(
        self,
        city: SyntheticCity,
        config: Optional[WardriveConfig] = None,
    ) -> None:
        self.city = city
        self.engine: Engine = city.engine
        self.config = config if config is not None else WardriveConfig()
        self.route: Optional[DriveRoute] = None
        self._units: List[tuple] = []  # (dongle, probe) pairs
        self._queues: Dict[int, List[_TargetState]] = {}
        self._targets: Dict[MacAddress, _TargetState] = {}
        #: MACs another tile already verified (``apply_external_evidence``
        #: before this pipeline discovered them).
        self._preverified: set = set()
        self.results = SurveyResults()
        self._running = False
        if self.config.injector_mode not in ("event", "poll"):
            raise ValueError(
                f"unknown injector mode {self.config.injector_mode!r}"
            )
        self._event_mode = self.config.injector_mode == "event"
        #: Event-mode state: the next unserved point of the injector tick
        #: grid (the same ``start + 0.1 + k*tick`` chain of floats the
        #: polling loop accumulates), and the grid time a wake is already
        #: scheduled for (dedupe).
        self._grid = 0.0
        self._armed_at: Optional[float] = None
        self._build_rig()
        self.scanner = PassiveScanner(
            [dongle for dongle, _ in self._units],
            vendor_db=city.vendor_db,
            on_discovery=self._on_discovery,
        )

    # ------------------------------------------------------------------
    # Rig construction
    # ------------------------------------------------------------------
    def _vehicle_position(self, time: float):
        assert self.route is not None
        return self.route.position_at(time).translated(dz=self.config.rig_height_m)

    def _build_rig(self) -> None:
        rng = np.random.default_rng(self.city.config.seed ^ 0xD0D6)
        if self.config.rig_mode not in ("multi", "hopping"):
            raise ValueError(f"unknown rig mode {self.config.rig_mode!r}")
        channels = (
            SURVEY_CHANNELS if self.config.rig_mode == "multi" else SURVEY_CHANNELS[:1]
        )
        for index, channel in enumerate(channels):
            mac_tail = bytes([0x02, 0xDD, 0x00, 0x00, 0x00, 0x10 + index])
            dongle = MonitorDongle(
                mac=MacAddress(mac_tail),
                medium=self.city.medium,
                position=self._vehicle_position,
                rng=rng,
                channel=channel,
                rx_sensitivity_dbm=-95.0,  # wardriving rigs run good antennas
            )
            self._units.append(
                (
                    dongle,
                    PoliteWiFiProbe(
                        dongle,
                        fake_source=self.config.fake_source,
                        attempts=self.config.probe_attempts,
                    ),
                )
            )
        for channel in SURVEY_CHANNELS:
            self._queues[channel] = []

    def _start_hopping(self) -> None:
        """Cycle the single dongle over the survey channels."""
        dongle = self._units[0][0]
        state = {"index": 0}

        def hop() -> None:
            if not self._running:
                return
            state["index"] = (state["index"] + 1) % len(SURVEY_CHANNELS)
            dongle.radio.channel = SURVEY_CHANNELS[state["index"]]
            self.engine.call_after(self.config.hop_dwell_s, hop)
            if self._event_mode:
                # The queue served just changed; the newly parked-on
                # channel may have waiting targets.
                self._arm_injector()

        self.engine.call_after(self.config.hop_dwell_s, hop)

    # ------------------------------------------------------------------
    # Stage 1: discovery
    # ------------------------------------------------------------------
    def _on_discovery(self, record: DiscoveredDevice) -> None:
        state = _TargetState(record=record)
        self._targets[record.mac] = state
        if record.mac in self._preverified:
            # A neighbouring tile already probed this device and relayed
            # the ACK evidence (apply_external_evidence): record the
            # verdict instead of burning probe airtime on a duplicate.
            state.verified = True
            self.results.probed.add(record.mac)
            self.results.responded.add(record.mac)
            return
        self._queues.setdefault(record.channel, []).append(state)
        if self._event_mode:
            self._arm_injector()

    def apply_external_evidence(self, mac: MacAddress, responded: bool) -> None:
        """Adopt another pipeline's probe verdict for ``mac``.

        The partition layer calls this at epoch boundaries when a
        neighbouring tile probed a device this pipeline also covers (the
        device sits in both tiles' halos).  The verdict is merged into
        :attr:`results` exactly as if this pipeline had probed the
        device itself; a queued target is dropped (probing again would
        only duplicate airtime), and a device not discovered yet is
        remembered so :meth:`_on_discovery` skips enqueueing it later.
        Only positive verdicts are adopted for undiscovered devices —
        a neighbour's *failed* probe must not stop this tile (which may
        be closer) from trying.
        """
        mac = MacAddress(mac)
        state = self._targets.get(mac)
        if state is None:
            if responded:
                self._preverified.add(mac)
            return
        if responded:
            if not state.verified:
                state.verified = True
                self.results.probed.add(mac)
                self.results.responded.add(mac)
            self._dequeue(state)

    def _dequeue(self, state: _TargetState) -> None:
        queue = self._queues.get(state.record.channel)
        if queue is not None and state in queue:
            queue.remove(state)

    # ------------------------------------------------------------------
    # Stages 2+3: inject + verify (one serialized unit per channel)
    # ------------------------------------------------------------------
    #
    # The injector serves targets at fixed grid times (start + 0.1 +
    # k*tick).  "poll" mode realizes the grid literally: one self-
    # re-arming engine event per unit per tick, ~hundreds of thousands of
    # no-op events per survey.  "event" mode (default) keeps the exact
    # same grid but only wakes at grid points that *follow a state
    # change*, because between changes a tick provably does nothing:
    #
    # * the queue and the monitor's busy flag only change at discovery,
    #   probe completion, and channel hop — each of those arms a wake at
    #   the first grid point strictly after it fires;
    # * a full probe cycle (attempts x (response window + retry pause),
    #   ~3 ms at the default settings) is shorter than the 4 ms tick, so
    #   the polling loop never observed a mid-cycle state either;
    # * mutators are scheduled closer to their fire time than a tick's
    #   full period, so at a shared fire time the poll tick's sequence
    #   number always sorted first — meaning a poll tick never saw
    #   same-time mutations, exactly like a wake armed strictly earlier.
    #
    # One wake serves every unit in unit order, matching poll mode's
    # per-unit ticks (scheduled unit 0 first) at equal times.
    def _arm_injector(self) -> None:
        """Schedule a wake at the first grid point after ``now`` (event mode)."""
        if not self._running:
            return
        now = self.engine.now
        tick = self.config.injector_tick
        grid = self._grid
        # Left-associated accumulation: visits exactly the float values
        # the polling loop's per-tick `now + tick` chain produces.
        while grid <= now:
            grid += tick
        self._grid = grid
        if self._armed_at != grid:
            self._armed_at = grid
            self.engine.post(grid, self._injector_wake)

    def _injector_wake(self) -> None:
        self._armed_at = None
        self._grid += self.config.injector_tick
        if not self._running:
            return
        for unit_index in range(len(self._units)):
            self._tick_unit(unit_index)

    def _injector_tick(self, unit_index: int) -> None:
        if not self._running:
            return
        self._tick_unit(unit_index)
        self.engine.call_after(
            self.config.injector_tick, lambda: self._injector_tick(unit_index)
        )

    def _tick_unit(self, unit_index: int) -> None:
        dongle, probe = self._units[unit_index]
        # A hopping rig serves whatever channel it is parked on right now.
        channel = dongle.radio.channel
        queue = self._queues.get(channel, [])
        if not probe.monitor.busy and queue:
            state = queue.pop(0)
            state.rounds += 1
            self.results.probed.add(state.record.mac)
            probe.probe_async(
                state.record.mac,
                lambda result, s=state: self._on_probe_result(s, result),
            )

    def _on_probe_result(self, state: _TargetState, result: ProbeResult) -> None:
        if result.responded:
            state.verified = True
            self.results.responded.add(state.record.mac)
        elif state.rounds < self.config.max_probe_rounds:
            # Back of its channel's queue; the vehicle may be closer (or a
            # hopping rig back on-channel) on a later pass.
            self._queues[state.record.channel].append(state)
        if self._event_mode:
            # The monitor freed up (and a failed target may have been
            # re-queued): the next queued target is servable at the next
            # grid point.
            self._arm_injector()

    # ------------------------------------------------------------------
    # Drive
    # ------------------------------------------------------------------
    def begin(
        self,
        duration_s: Optional[float] = None,
        route: Optional[DriveRoute] = None,
    ) -> float:
        """Arm the survey and return its end time (``engine.now`` base).

        Splitting :meth:`run` into begin / caller-driven
        ``engine.run_until`` / :meth:`finish` lets the partition layer
        advance the survey in epoch slices and exchange cross-tile
        evidence at the boundaries.  :meth:`run` composes the three, so
        the single-process path is unchanged.
        """
        self.route = route if route is not None else self.city.survey_route(
            self.config.vehicle_speed_mps
        )
        if duration_s is None:
            duration_s = self.route.duration + 10.0
        self._duration_s = duration_s
        self._running = True
        self.city.start(self.route)
        if self.config.rig_mode == "hopping":
            self._start_hopping()
        if self._event_mode:
            # Same first fire time as poll mode's call_after(0.1, ...).
            grid = self.engine.now + 0.1
            self._grid = grid
            self._armed_at = grid
            self.engine.post(grid, self._injector_wake)
        else:
            for unit_index in range(len(self._units)):
                self.engine.call_after(
                    0.1, lambda i=unit_index: self._injector_tick(i)
                )
        return self.engine.now + duration_s

    def finish(self) -> SurveyResults:
        """Tear down after the engine reached the end time; aggregate."""
        self._running = False
        self.city.stop()
        self.results.discovered = list(self.scanner.devices.values())
        self.results.duration_s = self._duration_s
        return self.results

    def run(
        self,
        duration_s: Optional[float] = None,
        route: Optional[DriveRoute] = None,
    ) -> SurveyResults:
        """Execute the survey; returns the aggregated results."""
        end_time = self.begin(duration_s, route)
        self.engine.run_until(end_time)
        return self.finish()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_targets(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def checkpoint_state(self) -> Dict[str, int]:
        """Compact digest of the pipeline's verdict state.

        The partition supervisor snapshots this at every epoch barrier
        and compares a relaunched worker's deterministic replay against
        the dead incarnation's last report.  Counts catch coarse drift;
        ``digest`` (a CRC over the sorted probed/responded/pre-verified
        MAC sets) catches same-size different-content divergence.  Small
        by construction — it crosses a pipe every epoch.
        """
        blob = b"|".join(
            b",".join(sorted(mac.bytes for mac in macs))
            for macs in (
                self.results.probed,
                self.results.responded,
                self._preverified,
            )
        )
        return {
            "discovered": len(self.scanner.devices),
            "probed": len(self.results.probed),
            "responded": len(self.results.responded),
            "pending": self.pending_targets(),
            "digest": zlib.crc32(blob),
        }

    def verification_rate(self) -> float:
        if not self._targets:
            return 0.0
        return sum(1 for s in self._targets.values() if s.verified) / len(
            self._targets
        )
