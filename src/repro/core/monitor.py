"""ACK observation and probe correlation (the verify role).

An ACK frame carries only the receiver address — the attacker's spoofed
MAC — so "which device just acknowledged?" must be answered by timing:
the ACK lands one SIFS after the frame that elicited it.  The third
survey thread does exactly this correlation; :class:`AckMonitor`
implements it with one outstanding expectation per dongle (the injector
serializes probes per channel, like the paper's implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.devices.dongle import MonitorDongle
from repro.mac.addresses import MacAddress
from repro.mac.frames import Frame
from repro.sim.engine import Event
from repro.sim.medium import Reception


@dataclass
class _Expectation:
    target: MacAddress
    deadline: float
    on_ack: Callable[[Reception], None]
    on_timeout: Callable[[], None]
    timeout_event: Optional[Event] = None


@dataclass
class AckObservation:
    """One ACK the monitor attributed to a probe."""

    target: MacAddress
    time: float
    rssi_dbm: float
    latency_after_probe: float


class AckMonitor:
    """Matches overheard ACKs to outstanding probes by timing."""

    def __init__(
        self,
        dongle: MonitorDongle,
        fake_source: MacAddress,
    ) -> None:
        self.dongle = dongle
        self.fake_source = MacAddress(fake_source)
        self._pending: Optional[_Expectation] = None
        self._pending_since = 0.0
        self.observations: List[AckObservation] = []
        self.stray_acks = 0
        dongle.add_listener(self._on_frame)

    @property
    def busy(self) -> bool:
        return self._pending is not None

    # ------------------------------------------------------------------
    # Expectation lifecycle
    # ------------------------------------------------------------------
    def expect_ack(
        self,
        target: MacAddress,
        window_s: float,
        on_ack: Callable[[Reception], None],
        on_timeout: Callable[[], None],
    ) -> None:
        """Arm the monitor: the next ACK to our fake MAC within the window
        is attributed to ``target``."""
        if self._pending is not None:
            raise RuntimeError("an expectation is already outstanding")
        engine = self.dongle.engine
        expectation = _Expectation(
            target=MacAddress(target),
            deadline=engine.now + window_s,
            on_ack=on_ack,
            on_timeout=on_timeout,
        )
        self._pending = expectation
        self._pending_since = engine.now

        def timeout() -> None:
            if self._pending is expectation:
                self._pending = None
                expectation.on_timeout()

        expectation.timeout_event = engine.call_after(window_s, timeout)

    def _on_frame(self, frame: Frame, reception: Reception) -> None:
        # ACKs answer data/management probes; CTSs answer RTS probes.
        # Both carry only a receiver address — our spoofed MAC.
        if not (frame.is_ack or frame.is_cts) or frame.addr1 != self.fake_source:
            return
        expectation = self._pending
        if expectation is None or reception.end > expectation.deadline:
            self.stray_acks += 1
            return
        self._pending = None
        if expectation.timeout_event is not None:
            expectation.timeout_event.cancel()
        self.observations.append(
            AckObservation(
                target=expectation.target,
                time=reception.end,
                rssi_dbm=reception.rssi_dbm,
                latency_after_probe=reception.end - self._pending_since,
            )
        )
        expectation.on_ack(reception)

    # ------------------------------------------------------------------
    # Passive counting (streams don't track individual expectations)
    # ------------------------------------------------------------------
    def count_acks_to_fake_mac(self) -> int:
        """Total attributed ACK observations so far."""
        return len(self.observations)
