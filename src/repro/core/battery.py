"""Battery-drain attack (Section 4.2, Figure 6).

Bombard a power-save IoT device with fake frames and watch its average
power.  The mechanics: every received frame (a) must be acknowledged —
TX energy, (b) resets the power-save inactivity timer — so above
~10 packets/s the radio never sleeps, and (c) costs fixed per-frame
processing energy — the linear term.  The paper measures ~10 mW
unattacked, ~230 mW once pinned awake, and ~360 mW at 900 packets/s
(35×), draining a Logitech Circle 2 in ~6.7 h and a Blink XT2 in
~16.7 h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.injector import FakeFrameInjector, InjectionStream
from repro.devices.battery import BatteryPoweredCamera
from repro.devices.dongle import MonitorDongle
from repro.devices.esp import Esp8266Device
from repro.mac.addresses import ATTACKER_FAKE_MAC, MacAddress
from repro.phy.radio import RadioState


@dataclass
class PowerSweepPoint:
    """One point of the Figure 6 curve."""

    rate_pps: float
    average_power_mw: float
    sleep_fraction: float
    frames_received: int
    acks_transmitted: int

    @property
    def radio_pinned_awake(self) -> bool:
        return self.sleep_fraction < 0.05


@dataclass
class BatteryLifeProjection:
    """Section 4.2's camera case-study arithmetic."""

    camera: BatteryPoweredCamera
    attack_power_mw: float

    @property
    def hours_under_attack(self) -> float:
        return self.camera.hours_under_attack(self.attack_power_mw)

    @property
    def advertised_hours(self) -> float:
        return self.camera.advertised_lifetime_hours

    @property
    def reduction_factor(self) -> float:
        return self.camera.lifetime_reduction_factor(self.attack_power_mw)


class BatteryDrainAttack:
    """Measure a victim's power draw under paced fake-frame bombardment."""

    def __init__(
        self,
        attacker: MonitorDongle,
        victim: Esp8266Device,
        fake_source: MacAddress = ATTACKER_FAKE_MAC,
    ) -> None:
        if victim.accountant is None:
            raise ValueError("the victim needs a power profile to measure")
        self.attacker = attacker
        self.victim = victim
        self.injector = FakeFrameInjector(attacker, fake_source)
        self.engine = attacker.engine

    # ------------------------------------------------------------------
    # Single measurement
    # ------------------------------------------------------------------
    def measure_power(
        self,
        rate_pps: float,
        duration_s: float = 10.0,
        settle_s: float = 1.0,
    ) -> PowerSweepPoint:
        """Average power of the victim at one attack rate.

        ``rate_pps=0`` measures the unattacked baseline (power save
        working).  A settle period before the measurement window lets the
        power-save state machine reach steady state.
        """
        accountant = self.victim.accountant
        assert accountant is not None
        stream: Optional[InjectionStream] = None
        if rate_pps > 0.0:
            stream = self.injector.start_stream(self.victim.mac, rate_pps)
        self.engine.run_until(self.engine.now + settle_s)
        accountant.reset_window()
        acks_before = self.victim.ack_engine.stats.acks_sent
        self.engine.run_until(self.engine.now + duration_s)
        power = accountant.average_power_mw()
        point = PowerSweepPoint(
            rate_pps=rate_pps,
            average_power_mw=power,
            sleep_fraction=accountant.duty_cycle(RadioState.SLEEP),
            frames_received=accountant.frames_processed,
            acks_transmitted=self.victim.ack_engine.stats.acks_sent - acks_before,
        )
        if stream is not None:
            stream.stop()
            # Drain in-flight frames so the next sweep point starts clean.
            self.engine.run_until(self.engine.now + 0.2)
        return point

    # ------------------------------------------------------------------
    # The Figure 6 sweep
    # ------------------------------------------------------------------
    def sweep(
        self,
        rates_pps: Sequence[float] = (0, 1, 5, 10, 25, 50, 100, 200, 400, 600, 900),
        duration_s: float = 10.0,
    ) -> List[PowerSweepPoint]:
        """Power vs fake-frame rate — the Figure 6 series."""
        return [self.measure_power(rate, duration_s) for rate in rates_pps]

    # ------------------------------------------------------------------
    # Camera projections
    # ------------------------------------------------------------------
    @staticmethod
    def project(
        cameras: Sequence[BatteryPoweredCamera], attack_power_mw: float
    ) -> List[BatteryLifeProjection]:
        return [
            BatteryLifeProjection(camera=camera, attack_power_mw=attack_power_mw)
            for camera in cameras
        ]

    @staticmethod
    def amplification(points: Sequence[PowerSweepPoint]) -> float:
        """Max power ÷ baseline power (the paper's 35×)."""
        baseline = next((p for p in points if p.rate_pps == 0), None)
        if baseline is None or baseline.average_power_mw <= 0.0:
            return 0.0
        peak = max(p.average_power_mw for p in points)
        return peak / baseline.average_power_mw
