"""Single-device WiFi sensing (the Section 4.3 opportunity).

Classic WiFi sensing needs two cooperating, modified devices per covered
area and 100–1000 packets/s of generated traffic.  Polite WiFi collapses
that to **one** modified device: an IoT hub transmits fake frames to any
nearby unmodified WiFi device and measures the CSI of the ACKs.  Every
thermostat, TV, and speaker in the house becomes a sensing anchor with
zero changes to its software.

:class:`SingleDeviceSensingHub` round-robins elicitation over a set of
anchor devices and feeds the per-anchor CSI streams to the estimators in
:mod:`repro.sensing` (occupancy, breathing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.channel.csi import Subcarriers
from repro.core.injector import FakeFrameInjector, InjectionStream
from repro.devices.esp import Esp32CsiSniffer
from repro.mac.addresses import ATTACKER_FAKE_MAC, MacAddress
from repro.sensing.breathing import BreathingEstimate, BreathingRateEstimator
from repro.sensing.csi_processing import CsiSeries
from repro.sensing.occupancy import OccupancyDetector


@dataclass
class AnchorStream:
    """CSI collected through one unmodified anchor device."""

    anchor: MacAddress
    samples_times: List[float] = field(default_factory=list)
    samples_amplitudes: List[float] = field(default_factory=list)

    def series(self, subcarrier: int = 17) -> CsiSeries:
        return CsiSeries(
            np.array(self.samples_times),
            np.array(self.samples_amplitudes),
            subcarrier,
        )


class SingleDeviceSensingHub:
    """An IoT hub doing whole-home sensing through strangers' ACKs."""

    def __init__(
        self,
        hub: Esp32CsiSniffer,
        fake_source: MacAddress = ATTACKER_FAKE_MAC,
        subcarrier: int = 17,
        rate_per_anchor_pps: float = 100.0,
    ) -> None:
        self.hub = hub
        self.subcarrier = subcarrier
        self.rate_per_anchor_pps = rate_per_anchor_pps
        self.injector = FakeFrameInjector(hub, fake_source)
        self._subcarrier_index = Subcarriers().array_index(subcarrier)
        self._anchors: Dict[MacAddress, AnchorStream] = {}
        self._streams: List[InjectionStream] = []
        self._pending_anchor: Optional[MacAddress] = None
        hub.add_listener(self._on_frame)
        #: The opportunity's deployment cost: exactly one modified device.
        self.modified_devices = 1

    # ------------------------------------------------------------------
    # Anchor management
    # ------------------------------------------------------------------
    def add_anchor(self, mac: MacAddress) -> None:
        """Register a nearby *unmodified* device as a sensing anchor."""
        self._anchors.setdefault(MacAddress(mac), AnchorStream(MacAddress(mac)))

    @property
    def anchors(self) -> List[MacAddress]:
        return list(self._anchors)

    def stream_for(self, mac: MacAddress) -> AnchorStream:
        return self._anchors[MacAddress(mac)]

    # ------------------------------------------------------------------
    # Sensing run
    # ------------------------------------------------------------------
    def sense(self, duration_s: float) -> None:
        """Elicit ACKs from every anchor for ``duration_s``.

        Anchors are probed on interleaved schedules; ACK→anchor
        attribution uses the same SIFS-timing trick as the survey: the
        hub serializes its injections, so the next ACK to the fake MAC
        belongs to the last-probed anchor.
        """
        engine = self.hub.engine
        if not self._anchors:
            raise RuntimeError("no anchors registered")
        anchor_list = list(self._anchors)
        period = 1.0 / (self.rate_per_anchor_pps * len(anchor_list))
        state = {"index": 0, "running": True}

        def tick() -> None:
            if not state["running"]:
                return
            anchor = anchor_list[state["index"] % len(anchor_list)]
            state["index"] += 1
            self._pending_anchor = anchor
            self.injector.inject_null(anchor)
            engine.call_after(period, tick)

        engine.call_after(period, tick)
        engine.run_until(engine.now + duration_s)
        state["running"] = False

    def _on_frame(self, frame, reception) -> None:
        if not frame.is_ack or frame.addr1 != self.injector.fake_source:
            return
        if reception.csi is None or self._pending_anchor is None:
            return
        stream = self._anchors.get(self._pending_anchor)
        if stream is None:
            return
        stream.samples_times.append(reception.end)
        stream.samples_amplitudes.append(
            float(abs(reception.csi[self._subcarrier_index]))
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def breathing_rate(
        self, anchor: MacAddress, estimator: Optional[BreathingRateEstimator] = None
    ) -> Optional[BreathingEstimate]:
        estimator = estimator or BreathingRateEstimator()
        return estimator.estimate(self.stream_for(anchor).series(self.subcarrier))

    def occupancy(
        self,
        anchor: MacAddress,
        detector: OccupancyDetector,
    ) -> float:
        """Fraction of time motion was detected near ``anchor``."""
        return detector.occupancy_fraction(
            self.stream_for(anchor).series(self.subcarrier)
        )

    def vital_signs(self, anchor: MacAddress):
        """Breathing + heart rate of a person near ``anchor``.

        Answers the paper's closing open question ("can an attacker
        estimate vital signs ... from the CSI of their WiFi devices?")
        through the same single-device pipeline.
        """
        from repro.sensing.vitals import VitalSignsEstimator

        return VitalSignsEstimator().estimate(
            self.stream_for(anchor).series(self.subcarrier)
        )
