"""Metric primitives: counters, gauges, and histograms.

These are deliberately minimal — a few machine words of state and one
attribute update per observation — because they sit on the simulator's
hottest paths (every scheduled event, every frame on the medium).  The
:class:`~repro.telemetry.registry.MetricsRegistry` owns instances and
turns them into plain-data snapshots; everything heavier (export, merge,
aggregation) operates on snapshots, never on live metric objects.

Naming convention: dotted lowercase paths, ``subsystem.object.verb``
(``engine.events.scheduled``, ``medium.frames.dropped``).  Metrics whose
value depends on the host machine rather than the simulation — wall-clock
timers — must carry ``wall_time`` in their name so campaign aggregation
can exclude them from determinism-sensitive output (see
:func:`~repro.telemetry.registry.merge_snapshots`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "default_buckets"]


def default_buckets() -> Tuple[float, ...]:
    """Exponential bucket bounds covering microseconds to kilo-units.

    Suitable both for latencies in seconds (1 µs … 10 s) and for small
    integer quantities; callers with specific ranges pass their own.
    """
    return tuple(10.0 ** e for e in range(-6, 4))


class Counter:
    """Monotonically increasing count (events, frames, ACKs...)."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount!r})")
        self.value += amount

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """Point-in-time level (heap depth, queue length) with a high-water mark."""

    __slots__ = ("name", "description", "value", "max_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float = 0
        self.max_value: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value, "max": self.max_value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, value={self.value!r}, max={self.max_value!r})"


class Histogram:
    """Distribution summary: count / sum / min / max plus bucket counts.

    Buckets are cumulative-style upper bounds (``value <= bound``); a
    final implicit ``+inf`` bucket catches the overflow.  Mergeable by
    summing counts, which is what campaign aggregation relies on.
    """

    __slots__ = ("name", "description", "count", "sum", "min", "max",
                 "bounds", "bucket_counts")

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.description = description
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        bounds = tuple(sorted(buckets)) if buckets is not None else default_buckets()
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.bounds: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {
                _bound_label(bound): count
                for bound, count in zip(
                    self.bounds + (math.inf,), self.bucket_counts
                )
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


def _bound_label(bound: float) -> str:
    """Stable JSON-safe label for a bucket upper bound."""
    return "+inf" if math.isinf(bound) else repr(bound)
