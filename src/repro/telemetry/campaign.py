"""Parallel campaign runner: fan a scenario out across seeds × parameters.

A *campaign* runs one registered scenario many times — once per
(seed, parameter-combination) — optionally across a ``multiprocessing``
pool, and writes a structured **run manifest** capturing everything
needed to reproduce or audit the sweep: scenario name, git revision,
per-run seed/params/metrics/duration, and a deterministic aggregate.

Scenarios come from :data:`repro.scenario.REGISTRY` — the declarative
scenario layer (see ``docs/scenarios.md``).  Each run derives the
scenario's template :class:`~repro.scenario.spec.ScenarioSpec` with its
own seed and parameters, builds a quiet
:class:`~repro.scenario.context.SimContext` around the run's private
:class:`~repro.telemetry.registry.MetricsRegistry`, and executes the
scenario callable.  The legacy :func:`scenario` decorator still accepts
``fn(seed, params, metrics)`` callables and adapts them onto the
registry.

Determinism contract
--------------------
Every run's randomness descends from its spec seed (the context's root
RNG, the medium RNG, every derived stream) and every run owns a private
metrics registry.  Workers return plain snapshot dicts; the parent sorts
results by run index and folds them with
:func:`~repro.telemetry.registry.merge_snapshots`, excluding wall-clock
metrics.  The ``aggregate`` section of the manifest is therefore
**byte-identical** for any worker count, which the campaign tests assert
(1 worker vs 4).

Streaming sidecar
-----------------
When ``output_path`` is set, per-run records are streamed to an
append-only JSONL sidecar (``<output_path>.runs.jsonl``) *as runs
complete*, so a killed campaign loses nothing: ``--resume`` reads the
sidecar (falling back to a prior manifest), reuses every completed
(seed, params) run, and the final manifest is assembled from the
combined records.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.scenario.context import SimContext
from repro.scenario.registry import REGISTRY
from repro.telemetry.registry import (
    WALL_TIME_MARKER,
    MetricsRegistry,
    merge_snapshots,
)

__all__ = [
    "CampaignConfig",
    "ScenarioFn",
    "available_scenarios",
    "get_scenario",
    "run_campaign",
    "scenario",
    "sidecar_path",
    "summarize_manifest",
]

#: Legacy scenario signature: ``fn(seed, params, metrics) -> outputs``.
#: New code should register ``fn(ctx)`` callables with
#: :func:`repro.scenario.scenario` instead.
ScenarioFn = Callable[[int, Dict[str, object], MetricsRegistry], Dict[str, object]]


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a legacy ``fn(seed, params, metrics)`` campaign scenario.

    Kept for backward compatibility; the callable is adapted onto
    :data:`repro.scenario.REGISTRY` so it is visible to every front end
    (``python -m repro run`` included).  Raises ``ValueError`` on a
    duplicate name, exactly as before.
    """

    def register(fn: ScenarioFn) -> ScenarioFn:
        def adapter(ctx: SimContext) -> Dict[str, object]:
            metrics = ctx.metrics
            if metrics is None:  # pragma: no cover - spec.metrics defaults on
                metrics = MetricsRegistry()
            return fn(ctx.spec.seed, dict(ctx.params), metrics)

        adapter.__name__ = getattr(fn, "__name__", name)
        adapter.__doc__ = fn.__doc__
        REGISTRY.register(name)(adapter)
        return fn

    return register


def get_scenario(name: str) -> ScenarioFn:
    """A legacy-shaped ``fn(seed, params, metrics)`` view of a registered
    scenario.  Raises ``KeyError`` (listing known names) when unknown."""
    entry = REGISTRY.get(name)

    def runner(
        seed: int, params: Dict[str, object], metrics: MetricsRegistry
    ) -> Dict[str, object]:
        spec = entry.spec.derive(seed=int(seed), params=dict(params))
        return entry.fn(SimContext(spec, metrics=metrics, quiet=True))

    return runner


def available_scenarios() -> List[str]:
    return REGISTRY.names()


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class CampaignConfig:
    """What to run and how wide to fan out.

    ``params`` apply to every run; ``grid`` maps parameter names to value
    lists and expands to the cross product, each combination run once per
    seed.  ``workers=1`` runs inline in the calling process (no pool),
    which is also the reference ordering the parallel path must match.
    """

    scenario: str
    seeds: Sequence[int] = (0,)
    params: Dict[str, object] = field(default_factory=dict)
    grid: Optional[Dict[str, Sequence[object]]] = None
    workers: int = 1
    name: str = ""
    output_path: Optional[Union[str, pathlib.Path]] = None
    #: Reuse results from the JSONL sidecar (or a prior manifest) at
    #: ``output_path``: runs whose (seed, params) already appear there
    #: are not re-executed.  Runs are re-keyed to the current expansion
    #: order, so interrupting and resuming a campaign converges on the
    #: same manifest as one uninterrupted execution (modulo host
    #: wall-clock fields).
    resume: bool = False

    def expand(self) -> List[Dict[str, object]]:
        """The ordered list of run payloads (index, scenario, seed, params)."""
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        combos: List[Dict[str, object]] = [{}]
        if self.grid:
            keys = sorted(self.grid)
            combos = [
                dict(zip(keys, values))
                for values in itertools.product(*(self.grid[k] for k in keys))
            ]
        payloads = []
        for combo in combos:
            for seed in self.seeds:
                payloads.append(
                    {
                        "index": len(payloads),
                        "scenario": self.scenario,
                        "seed": int(seed),
                        "params": {**self.params, **combo},
                    }
                )
        return payloads


# ----------------------------------------------------------------------
# Run execution (must stay module-level: workers pickle the payloads,
# not the function's closure)
# ----------------------------------------------------------------------
def _execute_run(payload: Dict[str, object]) -> Dict[str, object]:
    entry = REGISTRY.get(payload["scenario"])  # type: ignore[arg-type]
    metrics = MetricsRegistry()
    spec = entry.spec.derive(
        seed=int(payload["seed"]),  # type: ignore[arg-type]
        params=dict(payload["params"]),  # type: ignore[arg-type]
    )
    ctx = SimContext(spec, metrics=metrics, quiet=True)
    start = time.perf_counter()
    outputs = entry.fn(ctx)
    duration = time.perf_counter() - start
    return {
        "index": payload["index"],
        "seed": payload["seed"],
        "params": payload["params"],
        "duration_s": duration,
        "metrics": metrics.snapshot(),
        "outputs": dict(outputs or {}),
    }


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is markedly cheaper where available (the workers inherit the
    # already-imported simulator); spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _git_revision() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _is_wall_time(name: str) -> bool:
    return WALL_TIME_MARKER in name


def _aggregate(results: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold per-run results (already sorted by index) into the manifest's
    deterministic ``aggregate`` section: merged simulation metrics plus
    summed numeric outputs.  Wall-clock metrics and durations are
    deliberately excluded — they belong to the host, not the simulation."""
    metrics = merge_snapshots(
        (r["metrics"] for r in results), exclude=_is_wall_time
    )
    outputs: Dict[str, float] = {}
    for result in results:
        for key, value in result["outputs"].items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            outputs[key] = outputs.get(key, 0) + value
    return {
        "runs": len(results),
        "metrics": metrics,
        "outputs": {key: outputs[key] for key in sorted(outputs)},
    }


# ----------------------------------------------------------------------
# JSONL sidecar (streaming per-run records)
# ----------------------------------------------------------------------
def sidecar_path(output_path: Union[str, pathlib.Path]) -> pathlib.Path:
    """The JSONL sidecar that rides next to a campaign manifest."""
    return pathlib.Path(f"{output_path}.runs.jsonl")


class _SidecarWriter:
    """Streams per-run records to the JSONL sidecar as they complete.

    The file is rewritten at campaign start (meta line, then any reused
    runs) and appended to — with a flush per record — for the rest of
    the execution, so a killed campaign leaves every completed run on
    disk for ``--resume``.
    """

    def __init__(
        self, config: CampaignConfig, reused: List[Dict[str, object]]
    ) -> None:
        self.path = sidecar_path(config.output_path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._emit(
            {
                "kind": "campaign-meta",
                "scenario": config.scenario,
                "campaign": config.name or config.scenario,
                "created_unix": time.time(),
            }
        )
        for run in reused:
            self.write(run)

    def _emit(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def write(self, record: Dict[str, object]) -> None:
        self._emit(record)

    def close(self) -> None:
        self._handle.close()


def _read_sidecar(
    path: pathlib.Path,
) -> Tuple[List[Dict[str, object]], Optional[str]]:
    """Parse sidecar lines into (run records, scenario name).

    A truncated trailing line — the signature of a killed campaign —
    is tolerated and skipped."""
    runs: List[Dict[str, object]] = []
    scenario_name: Optional[str] = None
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("kind") == "campaign-meta":
            scenario_name = record.get("scenario")
        else:
            runs.append(record)
    return runs, scenario_name


# ----------------------------------------------------------------------
# Resume support
# ----------------------------------------------------------------------
def _run_key(seed: object, params: Dict[str, object]) -> Tuple[int, str]:
    """Identity of one run: the seed plus its canonicalized parameters.

    Indices are *not* part of the key — a resumed campaign may expand to
    a different run order (more seeds, a widened grid) and prior results
    are re-keyed into the new plan wherever they fit.
    """
    return (int(seed), json.dumps(params, sort_keys=True, default=str))


def _load_prior_runs(
    config: CampaignConfig,
) -> Tuple[List[Dict[str, object]], Optional[str]]:
    """Completed runs recorded at ``output_path``: the JSONL sidecar when
    present (it survives kills), else the manifest itself."""
    path = pathlib.Path(config.output_path)
    sidecar = sidecar_path(path)
    if sidecar.exists():
        return _read_sidecar(sidecar)
    if not path.exists():
        return [], None
    try:
        previous = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot resume from {path}: {exc}") from exc
    return list(previous.get("runs", [])), previous.get("scenario")


def _split_resumable(
    config: CampaignConfig, payloads: List[Dict[str, object]]
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Partition payloads into (still to run, reused prior results)."""
    if config.output_path is None:
        raise ValueError("resume requires output_path (the manifest to resume)")
    prior_runs, prior_scenario = _load_prior_runs(config)
    if not prior_runs and prior_scenario is None:
        return payloads, []
    if prior_scenario != config.scenario:
        raise ValueError(
            f"cannot resume from {config.output_path}: it ran scenario "
            f"{prior_scenario!r}, not {config.scenario!r}"
        )
    prior: Dict[Tuple[int, str], Dict[str, object]] = {}
    for run in prior_runs:
        prior[_run_key(run["seed"], run["params"])] = run
    remaining: List[Dict[str, object]] = []
    reused: List[Dict[str, object]] = []
    for payload in payloads:
        run = prior.get(_run_key(payload["seed"], payload["params"]))
        if run is None:
            remaining.append(payload)
        else:
            run = dict(run)
            run["index"] = payload["index"]
            reused.append(run)
    return remaining, reused


# ----------------------------------------------------------------------
# The campaign itself
# ----------------------------------------------------------------------
def run_campaign(config: CampaignConfig) -> Dict[str, object]:
    """Execute every run of ``config`` and return the manifest dict.

    With ``output_path`` set, per-run records stream to the JSONL
    sidecar as they complete and the manifest is written at the end.
    """
    from repro import __version__  # deferred: repro/__init__ imports telemetry

    payloads = config.expand()
    # Fail fast before forking workers: unknown scenario, then unknown
    # parameter names (base params and every swept grid key).
    entry = REGISTRY.get(config.scenario)
    entry.validate_params({**config.params, **{k: None for k in (config.grid or ())}})
    start = time.perf_counter()
    reused: List[Dict[str, object]] = []
    if config.resume:
        payloads, reused = _split_resumable(config, payloads)
    writer: Optional[_SidecarWriter] = None
    if config.output_path is not None:
        writer = _SidecarWriter(config, reused)
    try:
        results: List[Dict[str, object]] = []
        if not payloads:
            pass
        elif config.workers == 1 or len(payloads) == 1:
            for payload in payloads:
                record = _execute_run(payload)
                if writer is not None:
                    writer.write(record)
                results.append(record)
        else:
            workers = min(config.workers, len(payloads))
            with _pool_context().Pool(processes=workers) as pool:
                # Unordered so the sidecar sees each record the moment
                # its run completes; the deterministic order is restored
                # by the index sort below.
                for record in pool.imap_unordered(_execute_run, payloads):
                    if writer is not None:
                        writer.write(record)
                    results.append(record)
    finally:
        if writer is not None:
            writer.close()
    results.extend(reused)
    results.sort(key=lambda r: r["index"])
    manifest: Dict[str, object] = {
        "campaign": config.name or config.scenario,
        "scenario": config.scenario,
        "repro_version": __version__,
        "git_rev": _git_revision(),
        "created_unix": time.time(),
        "workers": config.workers,
        "seeds": [int(seed) for seed in config.seeds],
        "base_params": dict(config.params),
        "grid": {k: list(v) for k, v in config.grid.items()} if config.grid else None,
        "runs": results,
        "resumed_runs": len(reused),
        "aggregate": _aggregate(results),
        "total_duration_s": time.perf_counter() - start,
    }
    if config.output_path is not None:
        path = pathlib.Path(config.output_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        manifest["runs_jsonl"] = str(sidecar_path(path))
        path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return manifest


def summarize_manifest(manifest: Dict[str, object]) -> str:
    """Human-readable campaign summary (the CLI prints this)."""
    lines = [
        f"campaign   : {manifest['campaign']}",
        f"scenario   : {manifest['scenario']}",
        f"git rev    : {manifest['git_rev'][:12]}",
        f"runs       : {manifest['aggregate']['runs']} "
        f"({manifest['workers']} worker(s), "
        f"{manifest['total_duration_s']:.2f}s wall)",
        "",
        "  run  seed  duration   outputs",
    ]
    for run in manifest["runs"]:
        outputs = ", ".join(
            f"{key}={value}" for key, value in sorted(run["outputs"].items())
        )
        lines.append(
            f"  {run['index']:>3}  {run['seed']:>4}  {run['duration_s']:>7.2f}s   {outputs}"
        )
    lines.append("")
    lines.append("aggregate outputs:")
    for key, value in manifest["aggregate"]["outputs"].items():
        lines.append(f"  {key:<24} {value}")
    counters = manifest["aggregate"]["metrics"]["counters"]
    if counters:
        lines.append("aggregate counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<32} {value}")
    return "\n".join(lines)
