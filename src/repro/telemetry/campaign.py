"""Parallel campaign runner: fan a scenario out across seeds × parameters.

A *campaign* runs one registered scenario callable many times — once per
(seed, parameter-combination) — optionally across a ``multiprocessing``
pool, and writes a structured **run manifest** capturing everything
needed to reproduce or audit the sweep: scenario name, git revision,
per-run seed/params/metrics/duration, and a deterministic aggregate.

Determinism contract
--------------------
Every run owns its own ``np.random.default_rng(seed)`` tree (scenarios
receive the seed and derive all randomness from it) and its own private
:class:`~repro.telemetry.registry.MetricsRegistry`.  Workers return plain
snapshot dicts; the parent sorts results by run index and folds them with
:func:`~repro.telemetry.registry.merge_snapshots`, excluding wall-clock
metrics.  The ``aggregate`` section of the manifest is therefore
**byte-identical** for any worker count, which the campaign tests assert
(1 worker vs 4).

Scenarios are looked up by name in a module-level registry so they can be
resolved inside spawned workers; register new ones with the
:func:`scenario` decorator (built-ins live in
:mod:`repro.telemetry.scenarios`)::

    @scenario("my-sweep")
    def my_sweep(seed, params, metrics):
        rng = np.random.default_rng(seed)
        ...
        return {"some_count": 42}
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.registry import (
    WALL_TIME_MARKER,
    MetricsRegistry,
    merge_snapshots,
)

__all__ = [
    "CampaignConfig",
    "ScenarioFn",
    "available_scenarios",
    "get_scenario",
    "run_campaign",
    "scenario",
    "summarize_manifest",
]

#: ``fn(seed, params, metrics) -> outputs`` — outputs must be a flat dict
#: of JSON-serializable values (numeric outputs are summed into the
#: aggregate).
ScenarioFn = Callable[[int, Dict[str, object], MetricsRegistry], Dict[str, object]]

_SCENARIOS: Dict[str, ScenarioFn] = {}


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a campaign scenario under ``name``."""

    def register(fn: ScenarioFn) -> ScenarioFn:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered")
        _SCENARIOS[name] = fn
        return fn

    return register


def _ensure_builtins() -> None:
    # Imported for its registration side effects; deferred to avoid a
    # circular import (scenarios.py imports this module's decorator).
    import repro.telemetry.scenarios  # noqa: F401


def get_scenario(name: str) -> ScenarioFn:
    _ensure_builtins()
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def available_scenarios() -> List[str]:
    _ensure_builtins()
    return sorted(_SCENARIOS)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class CampaignConfig:
    """What to run and how wide to fan out.

    ``params`` apply to every run; ``grid`` maps parameter names to value
    lists and expands to the cross product, each combination run once per
    seed.  ``workers=1`` runs inline in the calling process (no pool),
    which is also the reference ordering the parallel path must match.
    """

    scenario: str
    seeds: Sequence[int] = (0,)
    params: Dict[str, object] = field(default_factory=dict)
    grid: Optional[Dict[str, Sequence[object]]] = None
    workers: int = 1
    name: str = ""
    output_path: Optional[Union[str, pathlib.Path]] = None
    #: Reuse results from an existing manifest at ``output_path``: runs
    #: whose (seed, params) already appear there are not re-executed.
    #: Runs are re-keyed to the current expansion order, so interrupting
    #: and resuming a campaign converges on the same manifest as one
    #: uninterrupted execution (modulo host wall-clock fields).
    resume: bool = False

    def expand(self) -> List[Dict[str, object]]:
        """The ordered list of run payloads (index, scenario, seed, params)."""
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        combos: List[Dict[str, object]] = [{}]
        if self.grid:
            keys = sorted(self.grid)
            combos = [
                dict(zip(keys, values))
                for values in itertools.product(*(self.grid[k] for k in keys))
            ]
        payloads = []
        for combo in combos:
            for seed in self.seeds:
                payloads.append(
                    {
                        "index": len(payloads),
                        "scenario": self.scenario,
                        "seed": int(seed),
                        "params": {**self.params, **combo},
                    }
                )
        return payloads


# ----------------------------------------------------------------------
# Run execution (must stay module-level: workers pickle the payloads,
# not the function's closure)
# ----------------------------------------------------------------------
def _execute_run(payload: Dict[str, object]) -> Dict[str, object]:
    fn = get_scenario(payload["scenario"])  # type: ignore[arg-type]
    metrics = MetricsRegistry()
    start = time.perf_counter()
    outputs = fn(payload["seed"], dict(payload["params"]), metrics)  # type: ignore[arg-type]
    duration = time.perf_counter() - start
    return {
        "index": payload["index"],
        "seed": payload["seed"],
        "params": payload["params"],
        "duration_s": duration,
        "metrics": metrics.snapshot(),
        "outputs": dict(outputs or {}),
    }


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is markedly cheaper where available (the workers inherit the
    # already-imported simulator); spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _git_revision() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _is_wall_time(name: str) -> bool:
    return WALL_TIME_MARKER in name


def _aggregate(results: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold per-run results (already sorted by index) into the manifest's
    deterministic ``aggregate`` section: merged simulation metrics plus
    summed numeric outputs.  Wall-clock metrics and durations are
    deliberately excluded — they belong to the host, not the simulation."""
    metrics = merge_snapshots(
        (r["metrics"] for r in results), exclude=_is_wall_time
    )
    outputs: Dict[str, float] = {}
    for result in results:
        for key, value in result["outputs"].items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            outputs[key] = outputs.get(key, 0) + value
    return {
        "runs": len(results),
        "metrics": metrics,
        "outputs": {key: outputs[key] for key in sorted(outputs)},
    }


# ----------------------------------------------------------------------
# Resume support
# ----------------------------------------------------------------------
def _run_key(seed: object, params: Dict[str, object]) -> Tuple[int, str]:
    """Identity of one run: the seed plus its canonicalized parameters.

    Indices are *not* part of the key — a resumed campaign may expand to
    a different run order (more seeds, a widened grid) and prior results
    are re-keyed into the new plan wherever they fit.
    """
    return (int(seed), json.dumps(params, sort_keys=True, default=str))


def _split_resumable(
    config: CampaignConfig, payloads: List[Dict[str, object]]
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Partition payloads into (still to run, reused prior results)."""
    if config.output_path is None:
        raise ValueError("resume requires output_path (the manifest to resume)")
    path = pathlib.Path(config.output_path)
    if not path.exists():
        return payloads, []
    try:
        previous = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot resume from {path}: {exc}") from exc
    if previous.get("scenario") != config.scenario:
        raise ValueError(
            f"cannot resume from {path}: it ran scenario "
            f"{previous.get('scenario')!r}, not {config.scenario!r}"
        )
    prior: Dict[Tuple[int, str], Dict[str, object]] = {}
    for run in previous.get("runs", []):
        prior[_run_key(run["seed"], run["params"])] = run
    remaining: List[Dict[str, object]] = []
    reused: List[Dict[str, object]] = []
    for payload in payloads:
        run = prior.get(_run_key(payload["seed"], payload["params"]))
        if run is None:
            remaining.append(payload)
        else:
            run = dict(run)
            run["index"] = payload["index"]
            reused.append(run)
    return remaining, reused


# ----------------------------------------------------------------------
# The campaign itself
# ----------------------------------------------------------------------
def run_campaign(config: CampaignConfig) -> Dict[str, object]:
    """Execute every run of ``config`` and return the manifest dict.

    The manifest is also written to ``config.output_path`` when set.
    """
    from repro import __version__  # deferred: repro/__init__ imports telemetry

    payloads = config.expand()
    get_scenario(config.scenario)  # fail fast before forking workers
    start = time.perf_counter()
    reused: List[Dict[str, object]] = []
    if config.resume:
        payloads, reused = _split_resumable(config, payloads)
    if not payloads:
        results = []
    elif config.workers == 1 or len(payloads) == 1:
        results = [_execute_run(payload) for payload in payloads]
    else:
        workers = min(config.workers, len(payloads))
        with _pool_context().Pool(processes=workers) as pool:
            results = pool.map(_execute_run, payloads)
    results.extend(reused)
    results.sort(key=lambda r: r["index"])
    manifest: Dict[str, object] = {
        "campaign": config.name or config.scenario,
        "scenario": config.scenario,
        "repro_version": __version__,
        "git_rev": _git_revision(),
        "created_unix": time.time(),
        "workers": config.workers,
        "seeds": [int(seed) for seed in config.seeds],
        "base_params": dict(config.params),
        "grid": {k: list(v) for k, v in config.grid.items()} if config.grid else None,
        "runs": results,
        "resumed_runs": len(reused),
        "aggregate": _aggregate(results),
        "total_duration_s": time.perf_counter() - start,
    }
    if config.output_path is not None:
        path = pathlib.Path(config.output_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return manifest


def summarize_manifest(manifest: Dict[str, object]) -> str:
    """Human-readable campaign summary (the CLI prints this)."""
    lines = [
        f"campaign   : {manifest['campaign']}",
        f"scenario   : {manifest['scenario']}",
        f"git rev    : {manifest['git_rev'][:12]}",
        f"runs       : {manifest['aggregate']['runs']} "
        f"({manifest['workers']} worker(s), "
        f"{manifest['total_duration_s']:.2f}s wall)",
        "",
        "  run  seed  duration   outputs",
    ]
    for run in manifest["runs"]:
        outputs = ", ".join(
            f"{key}={value}" for key, value in sorted(run["outputs"].items())
        )
        lines.append(
            f"  {run['index']:>3}  {run['seed']:>4}  {run['duration_s']:>7.2f}s   {outputs}"
        )
    lines.append("")
    lines.append("aggregate outputs:")
    for key, value in manifest["aggregate"]["outputs"].items():
        lines.append(f"  {key:<24} {value}")
    counters = manifest["aggregate"]["metrics"]["counters"]
    if counters:
        lines.append("aggregate counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<32} {value}")
    return "\n".join(lines)
