"""Sharded, fault-tolerant campaign runner: fan a scenario out across
seeds × parameters, across processes, across machines.

A *campaign* runs one registered scenario many times — once per
(seed, parameter-combination) — optionally across a ``multiprocessing``
pool, and writes a structured **run manifest** capturing everything
needed to reproduce or audit the sweep: scenario name + fingerprint, git
revision, per-run seed/params/spec/metrics/duration, and a
deterministic aggregate.

Scenarios come from :data:`repro.scenario.REGISTRY` — the declarative
scenario layer (see ``docs/scenarios.md``).  Each run derives the
scenario's template :class:`~repro.scenario.spec.ScenarioSpec` with its
own seed and parameters, builds a quiet
:class:`~repro.scenario.context.SimContext` around the run's private
:class:`~repro.telemetry.registry.MetricsRegistry`, and executes the
scenario callable.  The legacy :func:`scenario` decorator still accepts
``fn(seed, params, metrics)`` callables and adapts them onto the
registry.

Determinism contract
--------------------
Every run's randomness descends from its spec seed (the context's root
RNG, the medium RNG, every derived stream) and every run owns a private
metrics registry.  Workers return plain snapshot dicts; the parent sorts
results by run index and folds them with
:func:`~repro.telemetry.registry.merge_snapshots`, excluding wall-clock
metrics.  The ``aggregate`` section of the manifest is therefore
**byte-identical** for any worker count *and any shard count*, which the
campaign tests assert (1 vs 2 vs 4 workers × 1 vs 2 vs 3 shards).

Sharding
--------
``CampaignConfig(shard_index=i, shard_count=N)`` — the CLI spelling is
``--shard i+1/N`` — deterministically partitions the expanded run plan:
run *k* belongs to shard ``k % N``.  Each shard executes only its slice,
writes its own manifest at :func:`shard_manifest_path` (plus its own
JSONL sidecar, so ``--resume`` works per shard), and embeds enough
identity — scenario fingerprint, repro version, git revision, seeds,
params, grid — for :func:`merge_manifests` to refuse shards that did not
run the same campaign.  ``campaign merge`` combines shard manifests into
an aggregate byte-identical to the unsharded run, regardless of shard
count or completion order; a missing shard is an error (or an explicit
``missing`` gap report with ``allow_missing``), never a silent
under-count.

Fault tolerance
---------------
Three failure modes are first-class:

* **a run hangs** — ``run_timeout_s`` arms a per-attempt alarm inside
  the worker; a timed-out attempt raises :class:`RunTimeoutError` and is
  retried like any other failure;
* **a run raises** — each run gets ``retries`` extra attempts (with
  ``retry_backoff_s`` linear backoff between them); an exhausted run is
  either re-raised (``on_error="raise"``) or recorded in the manifest as
  a ``status: "failed"`` run with the error surfaced
  (``on_error="record"``), never swallowed;
* **the whole worker box dies** — per-run records stream to an
  append-only JSONL sidecar as runs complete, with periodic
  ``heartbeat`` records so a stalled worker is distinguishable from a
  slow one; ``--resume`` replays the sidecar (tolerating the torn final
  line a SIGKILL leaves) and re-executes only what is missing.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import pathlib
import signal
import subprocess
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.scenario.context import SimContext
from repro.scenario.registry import REGISTRY
from repro.telemetry.export import load_manifest, write_manifest
from repro.telemetry.registry import (
    WALL_TIME_MARKER,
    MetricsRegistry,
    merge_snapshots,
)

__all__ = [
    "CampaignConfig",
    "CampaignRunError",
    "MissingShardsError",
    "RunTimeoutError",
    "ScenarioFn",
    "ShardMismatchError",
    "available_scenarios",
    "get_scenario",
    "merge_manifest_files",
    "merge_manifests",
    "parse_sidecar_record",
    "parse_sidecar_text",
    "run_campaign",
    "scenario",
    "shard_manifest_path",
    "shard_run_indices",
    "sidecar_path",
    "summarize_manifest",
]

#: Legacy scenario signature: ``fn(seed, params, metrics) -> outputs``.
#: New code should register ``fn(ctx)`` callables with
#: :func:`repro.scenario.scenario` instead.
ScenarioFn = Callable[[int, Dict[str, object], MetricsRegistry], Dict[str, object]]


class RunTimeoutError(RuntimeError):
    """A single campaign run exceeded its ``run_timeout_s`` budget."""


class CampaignRunError(RuntimeError):
    """A run failed every attempt and the campaign is set to re-raise.

    The message carries the run identity (index, seed, params) and the
    final error; kept to a single string so it pickles cleanly across
    the pool boundary.
    """


class ShardMismatchError(ValueError):
    """``campaign merge`` was handed shards of different campaigns."""


class MissingShardsError(ValueError):
    """``campaign merge`` found gaps in the shard set.

    ``missing`` lists the absent 0-based shard indices; pass
    ``allow_missing=True`` (CLI ``--allow-missing``) to merge anyway
    with the gap reported in the manifest instead.
    """

    def __init__(self, missing: List[int], count: int) -> None:
        super().__init__(
            f"missing shard(s) {', '.join(str(i + 1) for i in missing)} of "
            f"{count} (have you run and collected every "
            f"`--shard i/{count}`?); pass allow_missing (CLI: --allow-missing) "
            f"to aggregate the "
            f"partial set with the gap reported"
        )
        self.missing = list(missing)
        self.count = count


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a legacy ``fn(seed, params, metrics)`` campaign scenario.

    Kept for backward compatibility; the callable is adapted onto
    :data:`repro.scenario.REGISTRY` so it is visible to every front end
    (``python -m repro run`` included).  Raises ``ValueError`` on a
    duplicate name, exactly as before.
    """

    def register(fn: ScenarioFn) -> ScenarioFn:
        def adapter(ctx: SimContext) -> Dict[str, object]:
            metrics = ctx.metrics
            if metrics is None:  # pragma: no cover - spec.metrics defaults on
                metrics = MetricsRegistry()
            return fn(ctx.spec.seed, dict(ctx.params), metrics)

        adapter.__name__ = getattr(fn, "__name__", name)
        adapter.__doc__ = fn.__doc__
        REGISTRY.register(name)(adapter)
        return fn

    return register


def get_scenario(name: str) -> ScenarioFn:
    """A legacy-shaped ``fn(seed, params, metrics)`` view of a registered
    scenario.  Raises ``KeyError`` (listing known names) when unknown."""
    entry = REGISTRY.get(name)

    def runner(
        seed: int, params: Dict[str, object], metrics: MetricsRegistry
    ) -> Dict[str, object]:
        spec = entry.derive_spec(seed, params)
        return entry.fn(SimContext(spec, metrics=metrics, quiet=True))

    return runner


def available_scenarios() -> List[str]:
    return REGISTRY.names()


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class CampaignConfig:
    """What to run, how wide to fan out, and how to survive failures.

    ``params`` apply to every run; ``grid`` maps parameter names to value
    lists and expands to the cross product, each combination run once per
    seed.  ``workers=1`` runs inline in the calling process (no pool),
    which is also the reference ordering the parallel path must match.
    """

    scenario: str
    seeds: Sequence[int] = (0,)
    params: Dict[str, object] = field(default_factory=dict)
    grid: Optional[Dict[str, Sequence[object]]] = None
    workers: int = 1
    name: str = ""
    output_path: Optional[Union[str, pathlib.Path]] = None
    #: Reuse results from the JSONL sidecar (or a prior manifest) at
    #: the effective output path: runs whose (seed, params) already
    #: appear there are not re-executed.  Runs are re-keyed to the
    #: current expansion order, so interrupting and resuming a campaign
    #: converges on the same manifest as one uninterrupted execution
    #: (modulo host wall-clock fields).  Failed prior runs are *not*
    #: reused — resume retries them.
    resume: bool = False
    #: This process's shard (0-based) of a ``shard_count``-way split, or
    #: ``None`` to run the whole plan.  Run *k* of the expanded plan
    #: belongs to shard ``k % shard_count``, so every shard sees every
    #: parameter combination at roughly equal cost.
    shard_index: Optional[int] = None
    shard_count: int = 1
    #: Per-attempt wall-clock budget for one run; ``None`` = unlimited.
    #: Enforced with ``SIGALRM`` inside the executing process (no-op on
    #: platforms without ``signal.setitimer``).
    run_timeout_s: Optional[float] = None
    #: Extra attempts after a run raises (or times out); attempt *k*
    #: sleeps ``retry_backoff_s * k`` before retrying.
    retries: int = 0
    retry_backoff_s: float = 0.0
    #: What to do with a run that fails every attempt: ``"raise"``
    #: aborts the campaign with :class:`CampaignRunError` (the sidecar
    #: still holds every completed run); ``"record"`` keeps going and
    #: writes the run into the manifest with ``status: "failed"`` and
    #: the error surfaced.
    on_error: str = "raise"
    #: Interval between ``heartbeat`` records in the sidecar while runs
    #: are in flight (``None`` = no heartbeats).  A sidecar whose last
    #: heartbeat is stale is a stalled worker; one whose heartbeats are
    #: fresh but whose run count is static is a slow run.
    heartbeat_s: Optional[float] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent knobs (checked before any
        worker forks, so bad configs fail fast and cheap)."""
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1, got {self.shard_count!r}"
            )
        if self.shard_index is None:
            if self.shard_count != 1:
                raise ValueError(
                    "shard_count > 1 requires shard_index (which shard is "
                    "this process?)"
                )
        elif not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), got "
                f"{self.shard_index!r}"
            )
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValueError(
                f"run_timeout_s must be positive, got {self.run_timeout_s!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s!r}"
            )
        if self.on_error not in ("raise", "record"):
            raise ValueError(
                f"on_error must be 'raise' or 'record', got {self.on_error!r}"
            )
        if self.heartbeat_s is not None and self.heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat_s must be positive, got {self.heartbeat_s!r}"
            )

    def expand(self) -> List[Dict[str, object]]:
        """The ordered **full** run plan (index, scenario, seed, params),
        identical for every shard of the same campaign."""
        self.validate()
        combos: List[Dict[str, object]] = [{}]
        if self.grid:
            keys = sorted(self.grid)
            combos = [
                dict(zip(keys, values))
                for values in itertools.product(*(self.grid[k] for k in keys))
            ]
        payloads = []
        for combo in combos:
            for seed in self.seeds:
                payloads.append(
                    {
                        "index": len(payloads),
                        "scenario": self.scenario,
                        "seed": int(seed),
                        "params": {**self.params, **combo},
                    }
                )
        return payloads

    def shard_payloads(self) -> List[Dict[str, object]]:
        """This shard's slice of :meth:`expand` (the whole plan when
        unsharded).  Indices stay *global*, so shard manifests merge by
        plain index sort."""
        payloads = self.expand()
        if self.shard_index is None:
            return payloads
        slice_indices = set(
            shard_run_indices(len(payloads), self.shard_index, self.shard_count)
        )
        return [p for p in payloads if p["index"] in slice_indices]

    def run_policy(self) -> Dict[str, object]:
        """The retry/timeout policy shipped to workers (and recorded in
        the manifest)."""
        return {
            "timeout_s": self.run_timeout_s,
            "retries": self.retries,
            "backoff_s": self.retry_backoff_s,
            "on_error": self.on_error,
        }

    def to_spec_dict(self) -> Dict[str, object]:
        """The JSON-safe *campaign spec*: what to run, minus this
        process's transport knobs (shard, output path, resume, worker
        count).  The control plane writes this to ``campaign.json`` and
        every shard subprocess reads it back with
        :meth:`from_spec_dict`, so parameter values cross the process
        boundary as JSON — not as re-parsed command-line strings."""
        return {
            "scenario": self.scenario,
            "seeds": [int(seed) for seed in self.seeds],
            "params": dict(self.params),
            "grid": (
                {k: list(v) for k, v in self.grid.items()} if self.grid else None
            ),
            "name": self.name,
            "run_timeout_s": self.run_timeout_s,
            "retries": self.retries,
            "retry_backoff_s": self.retry_backoff_s,
            "on_error": self.on_error,
            "heartbeat_s": self.heartbeat_s,
        }

    @classmethod
    def from_spec_dict(
        cls, spec: Dict[str, object], **overrides: object
    ) -> "CampaignConfig":
        """Rebuild a config from :meth:`to_spec_dict` output; unknown
        keys raise so a typo in a submitted spec cannot silently become
        a default.  ``overrides`` supplies the per-process knobs
        (``shard_index``, ``output_path``, ``workers``, ...)."""
        known = {
            "scenario", "seeds", "params", "grid", "name", "run_timeout_s",
            "retries", "retry_backoff_s", "on_error", "heartbeat_s",
        }
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(
                f"unknown campaign spec key(s): {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(known))}"
            )
        if "scenario" not in spec or not spec["scenario"]:
            raise ValueError("campaign spec needs a 'scenario'")
        kwargs: Dict[str, object] = {
            "scenario": spec["scenario"],
            "seeds": list(spec.get("seeds") or [0]),
            "params": dict(spec.get("params") or {}),
            "grid": dict(spec["grid"]) if spec.get("grid") else None,
            "name": spec.get("name") or "",
            "run_timeout_s": spec.get("run_timeout_s"),
            "retries": int(spec.get("retries") or 0),
            "retry_backoff_s": float(spec.get("retry_backoff_s") or 0.0),
            "on_error": spec.get("on_error") or "raise",
            "heartbeat_s": spec.get("heartbeat_s"),
        }
        kwargs.update(overrides)
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Run execution (must stay module-level: workers pickle the payloads,
# not the function's closure)
# ----------------------------------------------------------------------
def _execute_run(payload: Dict[str, object]) -> Dict[str, object]:
    entry = REGISTRY.get(payload["scenario"])  # type: ignore[arg-type]
    metrics = MetricsRegistry()
    spec = entry.derive_spec(
        payload["seed"],  # type: ignore[arg-type]
        payload["params"],  # type: ignore[arg-type]
    )
    ctx = SimContext(spec, metrics=metrics, quiet=True)
    start = time.perf_counter()
    outputs = entry.fn(ctx)
    duration = time.perf_counter() - start
    return {
        "index": payload["index"],
        "seed": payload["seed"],
        "params": payload["params"],
        "spec": spec.to_dict(),
        "duration_s": duration,
        "metrics": metrics.snapshot(),
        "outputs": dict(outputs or {}),
    }


@contextmanager
def _attempt_alarm(timeout_s: Optional[float]) -> Iterator[None]:
    """Arm a wall-clock alarm around one run attempt.

    Uses ``SIGALRM``/``setitimer`` — available in the main thread of
    POSIX processes, which is exactly where campaign runs execute (the
    calling process inline, or the main thread of a forked pool
    worker).  Elsewhere (Windows, or an embedding that runs campaigns
    off the main thread) the timeout degrades to a no-op rather than
    crashing; the retry and record machinery still applies to runs that
    raise on their own.
    """
    if timeout_s is None or not hasattr(signal, "setitimer"):
        yield
        return

    def _on_alarm(signum, frame):  # pragma: no cover - trivial closure
        raise RunTimeoutError(f"run exceeded its {timeout_s}s timeout")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not in the main thread: degrade to no timeout
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_run_guarded(
    payload: Dict[str, object], policy: Dict[str, object]
) -> Dict[str, object]:
    """One run under the campaign's fault policy: per-attempt timeout,
    ``retries`` extra attempts with linear backoff, and — when the
    policy records instead of raising — a ``status: "failed"`` record
    that carries the final error and the attempt count."""
    timeout_s = policy.get("timeout_s")
    attempts_allowed = int(policy.get("retries", 0)) + 1
    backoff_s = float(policy.get("backoff_s", 0.0))
    start = time.perf_counter()
    last_error: Optional[BaseException] = None
    for attempt in range(1, attempts_allowed + 1):
        try:
            with _attempt_alarm(timeout_s):
                record = _execute_run(payload)
            record["status"] = "ok"
            record["attempts"] = attempt
            return record
        except Exception as exc:
            last_error = exc
            if attempt < attempts_allowed and backoff_s > 0.0:
                time.sleep(backoff_s * attempt)
    if policy.get("on_error") == "record":
        return {
            "index": payload["index"],
            "seed": payload["seed"],
            "params": payload["params"],
            "spec": None,
            "duration_s": time.perf_counter() - start,
            "metrics": MetricsRegistry().snapshot(),
            "outputs": {},
            "status": "failed",
            "attempts": attempts_allowed,
            "error": {
                "type": type(last_error).__name__,
                "message": str(last_error),
            },
        }
    raise CampaignRunError(
        f"run {payload['index']} (seed={payload['seed']}, "
        f"params={json.dumps(payload['params'], sort_keys=True, default=str)}) "
        f"failed after {attempts_allowed} attempt(s): "
        f"{type(last_error).__name__}: {last_error}"
    ) from last_error


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is markedly cheaper where available (the workers inherit the
    # already-imported simulator); spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _git_revision() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _is_wall_time(name: str) -> bool:
    return WALL_TIME_MARKER in name


def _aggregate(results: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold per-run results (already sorted by index) into the manifest's
    deterministic ``aggregate`` section: merged simulation metrics plus
    summed numeric outputs.  Wall-clock metrics and durations are
    deliberately excluded — they belong to the host, not the simulation.
    Failed runs are counted, not folded: their (empty) metrics and
    outputs would otherwise silently dilute nothing, but counting them
    keeps "5,328 devices" honest when 12 runs died."""
    completed = [r for r in results if r.get("status", "ok") == "ok"]
    metrics = merge_snapshots(
        (r["metrics"] for r in completed), exclude=_is_wall_time
    )
    outputs: Dict[str, float] = {}
    for result in completed:
        for key, value in result["outputs"].items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            outputs[key] = outputs.get(key, 0) + value
    return {
        "runs": len(completed),
        "failed": len(results) - len(completed),
        "metrics": metrics,
        "outputs": {key: outputs[key] for key in sorted(outputs)},
    }


def _failed_indices(results: List[Dict[str, object]]) -> List[int]:
    return sorted(
        int(r["index"]) for r in results if r.get("status", "ok") != "ok"
    )


# ----------------------------------------------------------------------
# Output paths
# ----------------------------------------------------------------------
def sidecar_path(output_path: Union[str, pathlib.Path]) -> pathlib.Path:
    """The JSONL sidecar that rides next to a campaign manifest."""
    return pathlib.Path(f"{output_path}.runs.jsonl")


def shard_manifest_path(
    output_path: Union[str, pathlib.Path], index: int, count: int
) -> pathlib.Path:
    """Where shard ``index`` (0-based) of ``count`` writes its manifest:
    ``out.json`` becomes ``out.shard1of4.json`` (1-based in the name,
    matching the CLI's ``--shard 1/4`` spelling).  Every shard derives
    its path from the *same* ``--out``, so N machines can share one
    command line apart from the shard argument."""
    path = pathlib.Path(output_path)
    suffix = path.suffix or ".json"
    return path.with_name(f"{path.stem}.shard{index + 1}of{count}{suffix}")


def shard_run_indices(plan_runs: int, index: int, count: int) -> List[int]:
    """The global run indices shard ``index`` (0-based) of ``count`` owns
    under the deterministic round-robin split: run *k* belongs to shard
    ``k % count``.  This is the *only* definition of a shard's slice —
    ``shard_payloads``, the merge validation, and the control plane's
    slice reassignment all derive from it, which is what makes stealing
    a dead shard's remaining work exact rather than heuristic."""
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count!r}")
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index!r}")
    return list(range(index, plan_runs, count))


def _effective_output_path(config: CampaignConfig) -> Optional[pathlib.Path]:
    if config.output_path is None:
        return None
    if config.shard_index is None:
        return pathlib.Path(config.output_path)
    return shard_manifest_path(
        config.output_path, config.shard_index, config.shard_count
    )


# ----------------------------------------------------------------------
# JSONL sidecar (streaming per-run records + heartbeats)
# ----------------------------------------------------------------------
class _SidecarWriter:
    """Streams per-run records to the JSONL sidecar as they complete.

    The file is rewritten at campaign start (meta line, then any reused
    runs) and appended to — with a flush per record — for the rest of
    the execution, so a killed campaign leaves every completed run on
    disk for ``--resume``.  Construction only opens the file and writes
    the meta line; every subsequent write happens inside the campaign's
    ``try/finally``, so a crash anywhere — a pool worker raising
    included — still closes the handle and leaves a replayable sidecar.

    Heartbeats come from a dedicated daemon thread
    (:meth:`start_heartbeats`), not from the run loop, so a sidecar
    stays demonstrably *alive* even while one long run is executing —
    the property the control plane's dead-shard detection rests on: a
    slow shard keeps beating, a SIGKILLed or hung one goes silent.
    All writes are serialized through a lock.
    """

    def __init__(self, config: CampaignConfig, path: pathlib.Path) -> None:
        self.path = sidecar_path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._stop_beating = threading.Event()
        self._beater: Optional[threading.Thread] = None
        self._emit(
            {
                "kind": "campaign-meta",
                "scenario": config.scenario,
                "campaign": config.name or config.scenario,
                "shard": (
                    None
                    if config.shard_index is None
                    else {
                        "index": config.shard_index,
                        "count": config.shard_count,
                    }
                ),
                "created_unix": time.time(),
            }
        )

    def _emit(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()

    def write(self, record: Dict[str, object]) -> None:
        self._emit(record)

    def heartbeat(self, completed: int, pending: int) -> None:
        """A liveness record: the campaign process was alive at
        ``unix`` with ``pending`` runs still in flight.  Progress plus a
        fresh heartbeat = slow; no fresh heartbeat = stalled/dead."""
        self._emit(
            {
                "kind": "heartbeat",
                "unix": time.time(),
                "completed": completed,
                "pending": pending,
            }
        )

    def start_heartbeats(
        self,
        interval_s: float,
        progress: Callable[[], Tuple[int, int]],
    ) -> None:
        """Emit a heartbeat every ``interval_s`` while runs are in
        flight.  ``progress`` returns ``(completed, pending)``; beats
        stop once nothing is pending (and at :meth:`close`)."""

        def beat() -> None:
            while not self._stop_beating.wait(interval_s):
                completed, pending = progress()
                if pending <= 0:
                    return
                self.heartbeat(completed=completed, pending=pending)

        self._beater = threading.Thread(
            target=beat, name="campaign-heartbeat", daemon=True
        )
        self._beater.start()

    def close(self) -> None:
        self._stop_beating.set()
        if self._beater is not None:
            self._beater.join(timeout=5.0)
            self._beater = None
        self._handle.close()

    def __enter__(self) -> "_SidecarWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def parse_sidecar_record(line: str) -> Optional[Dict[str, object]]:
    """One sidecar line -> its record dict, or ``None`` for anything
    unusable: blank lines, non-objects, and — crucially — the torn
    trailing line a SIGKILLed campaign leaves mid-write.  Every sidecar
    consumer (``--resume``, ``campaign status``, the control plane's
    tailer) shares this tolerance instead of reimplementing it."""
    if not line.strip():
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


def parse_sidecar_text(text: str) -> List[Dict[str, object]]:
    """Every parseable record in a sidecar's content, in order."""
    records = []
    for line in text.splitlines():
        record = parse_sidecar_record(line)
        if record is not None:
            records.append(record)
    return records


def _is_run_record(record: Dict[str, object]) -> bool:
    return (
        record.get("kind") is None and "seed" in record and "params" in record
    )


def _read_sidecar(
    path: pathlib.Path,
) -> Tuple[List[Dict[str, object]], Optional[str]]:
    """Parse sidecar lines into (run records, scenario name).

    A truncated trailing line — the signature of a killed campaign —
    is tolerated and skipped, as are heartbeat and other non-run
    records."""
    runs: List[Dict[str, object]] = []
    scenario_name: Optional[str] = None
    for record in parse_sidecar_text(path.read_text(encoding="utf-8")):
        if record.get("kind") == "campaign-meta":
            scenario_name = record.get("scenario")
        elif _is_run_record(record):
            runs.append(record)
    return runs, scenario_name


# ----------------------------------------------------------------------
# Resume support
# ----------------------------------------------------------------------
def _run_key(seed: object, params: Dict[str, object]) -> Tuple[int, str]:
    """Identity of one run: the seed plus its canonicalized parameters.

    Indices are *not* part of the key — a resumed campaign may expand to
    a different run order (more seeds, a widened grid, a different shard
    split) and prior results are re-keyed into the new plan wherever
    they fit.
    """
    return (int(seed), json.dumps(params, sort_keys=True, default=str))


def _load_prior_runs(
    config: CampaignConfig, path: pathlib.Path
) -> Tuple[List[Dict[str, object]], Optional[str]]:
    """Completed runs recorded at the effective output path: the JSONL
    sidecar when present (it survives kills), else the manifest itself."""
    sidecar = sidecar_path(path)
    if sidecar.exists():
        return _read_sidecar(sidecar)
    if not path.exists():
        return [], None
    try:
        previous = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot resume from {path}: {exc}") from exc
    return list(previous.get("runs", [])), previous.get("scenario")


def _split_resumable(
    config: CampaignConfig,
    payloads: List[Dict[str, object]],
    path: pathlib.Path,
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Partition payloads into (still to run, reused prior results).

    Failed prior runs are deliberately not reusable: resuming a
    campaign retries them (their failure may have been the dying worker
    this resume is recovering from)."""
    prior_runs, prior_scenario = _load_prior_runs(config, path)
    if not prior_runs and prior_scenario is None:
        return payloads, []
    if prior_scenario != config.scenario:
        raise ValueError(
            f"cannot resume from {path}: it ran scenario "
            f"{prior_scenario!r}, not {config.scenario!r}"
        )
    prior: Dict[Tuple[int, str], Dict[str, object]] = {}
    for run in prior_runs:
        if run.get("status", "ok") != "ok":
            continue
        prior[_run_key(run["seed"], run["params"])] = run
    remaining: List[Dict[str, object]] = []
    reused: List[Dict[str, object]] = []
    for payload in payloads:
        run = prior.get(_run_key(payload["seed"], payload["params"]))
        if run is None:
            remaining.append(payload)
        else:
            run = dict(run)
            run["index"] = payload["index"]
            reused.append(run)
    return remaining, reused


# ----------------------------------------------------------------------
# The campaign itself
# ----------------------------------------------------------------------
def _drain_pool(
    pool,
    payloads: List[Dict[str, object]],
    policy: Dict[str, object],
    writer: Optional[_SidecarWriter],
    results: List[Dict[str, object]],
) -> None:
    """Submit every payload and collect results as they complete.

    ``apply_async`` + polling rather than ``imap_unordered`` so results
    stream to the sidecar the moment each run finishes (not in
    submission order), and a worker exception (``on_error="raise"``)
    surfaces at the matching ``.get()``.  Heartbeats ride the writer's
    own thread, so this loop only moves run records."""
    pending = {
        p["index"]: pool.apply_async(_execute_run_guarded, (p, policy))
        for p in payloads
    }
    while pending:
        progressed = False
        for index in list(pending):
            handle = pending[index]
            if not handle.ready():
                continue
            del pending[index]
            record = handle.get()  # re-raises CampaignRunError from workers
            if writer is not None:
                writer.write(record)
            results.append(record)
            progressed = True
        if not progressed and pending:
            time.sleep(0.02)


def run_campaign(config: CampaignConfig) -> Dict[str, object]:
    """Execute this shard's runs of ``config`` and return the manifest.

    With ``output_path`` set, per-run records stream to the JSONL
    sidecar as they complete and the manifest is written at the end — to
    ``output_path`` itself when unsharded, to
    :func:`shard_manifest_path` for a shard.
    """
    from repro import __version__  # deferred: repro/__init__ imports telemetry

    # Fail fast before forking workers: config consistency, unknown
    # scenario, unknown parameter names (base params and every swept
    # grid key), then typed coercion — base params and each grid value
    # go through the scenario's param schema, so a CLI string like
    # "0.05" becomes the float every worker (and every shard) agrees on.
    config.validate()
    entry = REGISTRY.get(config.scenario)
    entry.validate_params({**config.params, **{k: None for k in (config.grid or ())}})
    if entry.param_schema:
        config = replace(
            config,
            params=entry.coerce_params(config.params),
            grid=(
                {
                    key: [
                        entry.coerce_params({key: value})[key]
                        for value in values
                    ]
                    for key, values in config.grid.items()
                }
                if config.grid
                else None
            ),
        )
    full_plan = config.expand()
    payloads = config.shard_payloads()
    shard_meta = (
        None
        if config.shard_index is None
        else {
            "index": config.shard_index,
            "count": config.shard_count,
            "plan_runs": len(full_plan),
            "shard_runs": len(payloads),
        }
    )
    output_path = _effective_output_path(config)
    if config.resume and output_path is None:
        raise ValueError("resume requires output_path (the manifest to resume)")
    start = time.perf_counter()
    reused: List[Dict[str, object]] = []
    if config.resume:
        payloads, reused = _split_resumable(config, payloads, output_path)
    writer: Optional[_SidecarWriter] = None
    policy = config.run_policy()
    results: List[Dict[str, object]] = []
    if output_path is not None:
        writer = _SidecarWriter(config, output_path)
    try:
        # Reused records are re-streamed first so the sidecar is always
        # the complete picture of this campaign, even if it crashes on
        # the very first fresh run.  This (and everything below) sits
        # inside the try/finally: a raising worker must still leave a
        # closed, replayable sidecar behind.
        if writer is not None:
            for run in reused:
                writer.write(run)
        if writer is not None and config.heartbeat_s is not None and payloads:
            # Liveness rides its own thread: the sidecar keeps beating
            # even while one long run is executing, so the control
            # plane can tell "slow" from "dead" without guessing.
            total = len(payloads)
            writer.start_heartbeats(
                config.heartbeat_s,
                lambda: (len(results), total - len(results)),
            )
        if not payloads:
            pass
        elif config.workers == 1 or len(payloads) == 1:
            for payload in payloads:
                record = _execute_run_guarded(payload, policy)
                if writer is not None:
                    writer.write(record)
                results.append(record)
        else:
            workers = min(config.workers, len(payloads))
            with _pool_context().Pool(processes=workers) as pool:
                _drain_pool(pool, payloads, policy, writer, results)
    finally:
        if writer is not None:
            writer.close()
    results.extend(reused)
    results.sort(key=lambda r: r["index"])
    manifest: Dict[str, object] = {
        "campaign": config.name or config.scenario,
        "scenario": config.scenario,
        "scenario_fingerprint": entry.fingerprint(),
        "repro_version": __version__,
        "git_rev": _git_revision(),
        "created_unix": time.time(),
        "workers": config.workers,
        "seeds": [int(seed) for seed in config.seeds],
        "base_params": dict(config.params),
        "grid": {k: list(v) for k, v in config.grid.items()} if config.grid else None,
        "shard": shard_meta,
        "run_policy": policy,
        "runs": results,
        "resumed_runs": len(reused),
        "failed_runs": _failed_indices(results),
        "aggregate": _aggregate(results),
        "total_duration_s": time.perf_counter() - start,
    }
    if output_path is not None:
        manifest["runs_jsonl"] = str(sidecar_path(output_path))
        write_manifest(manifest, output_path)
    return manifest


# ----------------------------------------------------------------------
# Merging shard manifests
# ----------------------------------------------------------------------
#: Manifest fields that must agree across every shard being merged: the
#: campaign identity (what ran) and the code identity (what ran it).
_SHARD_IDENTITY_FIELDS = (
    "campaign",
    "scenario",
    "scenario_fingerprint",
    "repro_version",
    "git_rev",
    "seeds",
    "base_params",
    "grid",
)


def _shard_section(manifest: Dict[str, object], label: str) -> Dict[str, object]:
    shard = manifest.get("shard")
    if not isinstance(shard, dict):
        raise ShardMismatchError(
            f"{label} is not a shard manifest (no 'shard' section); only "
            f"manifests produced with --shard can be merged"
        )
    return shard


def merge_manifests(
    manifests: Sequence[Dict[str, object]],
    allow_missing: bool = False,
) -> Dict[str, object]:
    """Combine shard manifests into one campaign manifest.

    The merged ``aggregate`` is byte-identical to the one an unsharded
    run of the same campaign produces, regardless of how many shards
    the plan was split into or the order their manifests are supplied.

    Shards must all describe the same campaign — same scenario
    fingerprint, repro version, git revision, seeds, params, and grid —
    else :class:`ShardMismatchError` names the offending field.  A gap
    in the shard set raises :class:`MissingShardsError` unless
    ``allow_missing`` is set, in which case the merged manifest reports
    the missing shard indices (``shards.missing``) and sets
    ``complete: false`` instead of silently under-aggregating.
    """
    if not manifests:
        raise ValueError("merge needs at least one shard manifest")
    labels = [
        f"shard manifest #{i + 1}" for i in range(len(manifests))
    ]
    sections = [
        _shard_section(m, label) for m, label in zip(manifests, labels)
    ]
    counts = {int(s["count"]) for s in sections}
    if len(counts) != 1:
        raise ShardMismatchError(
            f"shard manifests disagree on the shard count: "
            f"{sorted(counts)} — they are from different campaign splits"
        )
    count = counts.pop()
    reference = manifests[0]
    for manifest, label in zip(manifests[1:], labels[1:]):
        for field_name in _SHARD_IDENTITY_FIELDS:
            left = reference.get(field_name)
            right = manifest.get(field_name)
            if left != right:
                raise ShardMismatchError(
                    f"{label} does not match {labels[0]}: field "
                    f"{field_name!r} differs ({right!r} != {left!r}); "
                    f"shards must come from the same campaign at the same "
                    f"revision"
                )
    seen: Dict[int, str] = {}
    for section, label in zip(sections, labels):
        index = int(section["index"])
        if not 0 <= index < count:
            raise ShardMismatchError(
                f"{label} claims shard index {index} of {count}"
            )
        if index in seen:
            raise ShardMismatchError(
                f"{label} and {seen[index]} are both shard "
                f"{index + 1}/{count}; refusing to double-count its runs"
            )
        seen[index] = label
    missing = sorted(set(range(count)) - set(seen))
    if missing and not allow_missing:
        raise MissingShardsError(missing, count)
    runs: List[Dict[str, object]] = []
    for manifest, section, label in zip(manifests, sections, labels):
        index = int(section["index"])
        for run in manifest.get("runs", []):
            if int(run["index"]) % count != index:
                raise ShardMismatchError(
                    f"{label} contains run {run['index']}, which belongs to "
                    f"shard {int(run['index']) % count + 1}/{count}, not "
                    f"{index + 1}/{count}; the shard split is inconsistent"
                )
            runs.append(run)
    runs.sort(key=lambda r: r["index"])
    merged: Dict[str, object] = {
        "campaign": reference.get("campaign"),
        "scenario": reference.get("scenario"),
        "scenario_fingerprint": reference.get("scenario_fingerprint"),
        "repro_version": reference.get("repro_version"),
        "git_rev": reference.get("git_rev"),
        "created_unix": time.time(),
        "workers": None,
        "seeds": reference.get("seeds"),
        "base_params": reference.get("base_params"),
        "grid": reference.get("grid"),
        "shard": None,
        "shards": {
            "count": count,
            "present": sorted(seen),
            "missing": missing,
        },
        "complete": not missing,
        "run_policy": reference.get("run_policy"),
        "runs": runs,
        "resumed_runs": sum(
            int(m.get("resumed_runs", 0)) for m in manifests
        ),
        "failed_runs": _failed_indices(runs),
        "aggregate": _aggregate(runs),
        "total_duration_s": sum(
            float(m.get("total_duration_s", 0.0)) for m in manifests
        ),
    }
    return merged


def merge_manifest_files(
    paths: Sequence[Union[str, pathlib.Path]],
    output_path: Optional[Union[str, pathlib.Path]] = None,
    allow_missing: bool = False,
) -> Dict[str, object]:
    """Load shard manifests from disk, merge, optionally write the result."""
    manifests = [load_manifest(path) for path in paths]
    merged = merge_manifests(manifests, allow_missing=allow_missing)
    merged["shards"]["sources"] = [str(path) for path in paths]
    if output_path is not None:
        write_manifest(merged, output_path)
    return merged


def summarize_manifest(manifest: Dict[str, object]) -> str:
    """Human-readable campaign summary (the CLI prints this)."""
    workers = manifest.get("workers")
    workers_note = f"{workers} worker(s)" if workers else "merged shards"
    lines = [
        f"campaign   : {manifest['campaign']}",
        f"scenario   : {manifest['scenario']}",
        f"git rev    : {(manifest['git_rev'] or 'unknown')[:12]}",
        f"runs       : {manifest['aggregate']['runs']} "
        f"({workers_note}, "
        f"{manifest['total_duration_s']:.2f}s wall)",
    ]
    shard = manifest.get("shard")
    if shard:
        lines.append(
            f"shard      : {shard['index'] + 1}/{shard['count']} "
            f"({shard['shard_runs']} of {shard['plan_runs']} planned runs)"
        )
    shards = manifest.get("shards")
    if shards and shards.get("missing"):
        gaps = ", ".join(str(i + 1) for i in shards["missing"])
        lines.append(
            f"MISSING    : shard(s) {gaps} of {shards['count']} — the "
            f"aggregate below covers only the merged shards"
        )
    failed = manifest.get("failed_runs") or []
    if failed:
        lines.append(
            f"FAILED     : {len(failed)} run(s): "
            f"{', '.join(str(i) for i in failed)}"
        )
    lines.append("")
    lines.append("  run  seed  duration   outputs")
    for run in manifest["runs"]:
        if run.get("status", "ok") != "ok":
            error = run.get("error") or {}
            column = (
                f"FAILED after {run.get('attempts', '?')} attempt(s): "
                f"{error.get('type', 'Error')}: {error.get('message', '')}"
            )
        else:
            column = ", ".join(
                f"{key}={value}" for key, value in sorted(run["outputs"].items())
            )
        lines.append(
            f"  {run['index']:>3}  {run['seed']:>4}  {run['duration_s']:>7.2f}s   {column}"
        )
    lines.append("")
    lines.append("aggregate outputs:")
    for key, value in manifest["aggregate"]["outputs"].items():
        lines.append(f"  {key:<24} {value}")
    counters = manifest["aggregate"]["metrics"]["counters"]
    if counters:
        lines.append("aggregate counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<32} {value}")
    return "\n".join(lines)
