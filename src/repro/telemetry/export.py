"""Snapshot and manifest exporters: JSON and CSV.

Exporters operate on plain snapshot dicts (the output of
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` or
:func:`~repro.telemetry.registry.merge_snapshots`), never on live metric
objects, so they work identically on single-process runs and on
campaign aggregates shipped across process boundaries.

JSON is the canonical round-trippable form (``snapshot_from_json``
restores the exact dict, including the non-finite histogram min/max that
become ``null``).  CSV is a flat three-column view
(``metric,field,value``) for spreadsheet/pandas consumption.

Campaign manifests (and shard manifests) go through
:func:`manifest_to_json` / :func:`write_manifest` / :func:`load_manifest`
so every producer — ``run_campaign`` writing a shard, ``campaign merge``
writing the combined manifest — serializes with the same key ordering
and layout.  Shard-count independence is a *byte* guarantee, and it
rests on there being exactly one serializer.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Dict, Optional, Union

__all__ = [
    "snapshot_to_json",
    "snapshot_from_json",
    "snapshot_to_csv",
    "write_snapshot",
    "manifest_to_json",
    "write_manifest",
    "load_manifest",
    "status_to_json",
    "write_status",
]

Snapshot = Dict[str, Dict[str, object]]


def snapshot_to_json(snapshot: Snapshot, indent: Optional[int] = None) -> str:
    """Serialize a snapshot; keys are sorted so equal snapshots produce
    byte-identical JSON (the campaign determinism guarantee rests on this)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, allow_nan=False)


def snapshot_from_json(text: str) -> Snapshot:
    snapshot = json.loads(text)
    for section in ("counters", "gauges", "histograms"):
        snapshot.setdefault(section, {})
    return snapshot


def snapshot_to_csv(snapshot: Snapshot) -> str:
    """Flatten a snapshot to ``metric,field,value`` rows (sorted)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["metric", "field", "value"])
    for name in sorted(snapshot.get("counters", {})):
        writer.writerow([name, "count", snapshot["counters"][name]])
    for name in sorted(snapshot.get("gauges", {})):
        gauge = snapshot["gauges"][name]
        writer.writerow([name, "value", gauge["value"]])
        writer.writerow([name, "max", gauge["max"]])
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        for field in ("count", "sum", "min", "max", "mean"):
            value = hist[field]
            writer.writerow([name, field, "" if value is None else value])
        for label in sorted(hist["buckets"]):
            writer.writerow([name, f"bucket<={label}", hist["buckets"][label]])
    return buffer.getvalue()


def write_snapshot(
    snapshot: Snapshot,
    path: Union[str, pathlib.Path],
    indent: Optional[int] = 2,
) -> pathlib.Path:
    """Write a snapshot to ``path``; format chosen by suffix (.json/.csv)."""
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        text = snapshot_to_csv(snapshot)
    else:
        text = snapshot_to_json(snapshot, indent=indent) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Campaign manifests
# ----------------------------------------------------------------------
def manifest_to_json(manifest: Dict[str, object]) -> str:
    """The one canonical manifest serialization (sorted keys, 2-space
    indent, trailing newline).  Both ``run_campaign`` and
    ``merge_manifests`` emit through this, which is what makes "merged
    aggregate is byte-identical to the unsharded run" a checkable claim
    rather than a hope."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def write_manifest(
    manifest: Dict[str, object], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write a campaign (or shard) manifest to ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(manifest_to_json(manifest), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Control-plane status snapshots
# ----------------------------------------------------------------------
def status_to_json(status: Dict[str, object]) -> str:
    """Canonical serialization for control-plane status snapshots (the
    driver's ``driver.json``, ``campaign status --json``, and the HTTP
    service's responses): same sorted-keys/2-indent/trailing-newline
    shape as manifests, so snapshots diff cleanly."""
    return json.dumps(status, indent=2, sort_keys=True, default=str) + "\n"


def write_status(
    status: Dict[str, object], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Atomically write a status snapshot: the control plane rewrites
    these while ``campaign status`` and the HTTP service read them, and
    a torn JSON document — unlike a torn sidecar *line* — has no
    recovery path, so replace-via-rename is mandatory here."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(status_to_json(status), encoding="utf-8")
    tmp.replace(path)
    return path


def load_manifest(path: Union[str, pathlib.Path]) -> Dict[str, object]:
    """Read a manifest back; raises ``ValueError`` naming the file on
    unreadable or non-JSON content (the merge error surface)."""
    path = pathlib.Path(path)
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ValueError(f"manifest {path} is not a JSON object")
    return manifest
