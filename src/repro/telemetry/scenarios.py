"""Compatibility shim: the campaign scenarios moved to
:mod:`repro.scenario.library`.

``wardrive`` and ``battery`` are now registered in the declarative
scenario layer (specs + ``fn(ctx)`` callables, see ``docs/scenarios.md``)
alongside the CLI demos, so every front end — ``python -m repro run``,
``python -m repro campaign``, examples, benchmarks — shares one
definition.  This module re-exports them under their historical names
for older imports.
"""

from __future__ import annotations

from repro.scenario.library import battery as battery_scenario
from repro.scenario.library import wardrive as wardrive_scenario

__all__ = ["wardrive_scenario", "battery_scenario"]
