"""Built-in campaign scenarios.

Each scenario is one seeded, self-contained simulation sized so a single
run finishes in about a second — campaigns get their statistical weight
from fanning out over seeds and parameter grids, not from monolithic
runs.  All randomness descends from the run's seed (the campaign
determinism contract), and the run's :class:`MetricsRegistry` is threaded
through the engine so the manifest captures event/frame/ACK counts per
run.

* ``wardrive`` — a scaled-down Table 2 survey: synthetic city, 3-dongle
  rig, discover → inject → verify.  Parameters: ``population_scale``,
  ``blocks_x``, ``blocks_y``, ``vehicle_speed_mps``, ``probe_attempts``.
* ``battery`` — a scaled-down Figure 6 power sweep on the ESP8266 model.
  Parameters: ``rates_pps``, ``duration_s``, ``distance_m``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.telemetry.campaign import scenario
from repro.telemetry.registry import MetricsRegistry

__all__ = ["wardrive_scenario", "battery_scenario"]


@scenario("wardrive")
def wardrive_scenario(
    seed: int, params: Dict[str, object], metrics: MetricsRegistry
) -> Dict[str, object]:
    """Miniature Section 3 wardrive over a seeded synthetic city."""
    from repro.core.wardrive import WardriveConfig, WardrivePipeline
    from repro.sim.engine import Engine
    from repro.sim.medium import Medium
    from repro.survey.city import CityConfig, SyntheticCity

    engine = Engine(metrics=metrics)
    medium = Medium(engine, rng=np.random.default_rng(seed))
    city = SyntheticCity(
        engine,
        medium,
        CityConfig(
            seed=seed,
            population_scale=float(params.get("population_scale", 0.01)),
            keep_all_vendors=bool(params.get("keep_all_vendors", False)),
            blocks_x=int(params.get("blocks_x", 2)),
            blocks_y=int(params.get("blocks_y", 2)),
            beacon_interval=float(params.get("beacon_interval", 0.5)),
        ),
    )
    pipeline = WardrivePipeline(
        city,
        WardriveConfig(
            probe_attempts=int(params.get("probe_attempts", 4)),
            vehicle_speed_mps=float(params.get("vehicle_speed_mps", 14.0)),
        ),
    )
    results = pipeline.run()
    return {
        "population": city.population,
        "discovered": results.total_discovered,
        "probed": len(results.probed),
        "responded": results.total_responded,
        "response_rate": results.response_rate,
    }


@scenario("battery")
def battery_scenario(
    seed: int, params: Dict[str, object], metrics: MetricsRegistry
) -> Dict[str, object]:
    """Miniature Figure 6 battery-drain sweep against one ESP8266."""
    from repro.core.battery import BatteryDrainAttack
    from repro.devices.access_point import AccessPoint
    from repro.devices.dongle import MonitorDongle
    from repro.devices.esp import Esp8266Device
    from repro.mac.addresses import MacAddress
    from repro.sim.engine import Engine
    from repro.sim.medium import Medium
    from repro.sim.world import Position

    rates = tuple(float(r) for r in params.get("rates_pps", (0, 50, 200)))
    duration_s = float(params.get("duration_s", 3.0))
    distance_m = float(params.get("distance_m", 12.0))

    engine = Engine(metrics=metrics)
    medium = Medium(engine)
    rng = np.random.default_rng(seed)
    ap = AccessPoint(
        mac=MacAddress("0c:00:1e:00:00:02"),
        medium=medium, position=Position(0, 0, 2), rng=rng,
        ssid="IoTNet", passphrase="iot network key",
    )
    victim = Esp8266Device(
        mac=MacAddress("02:e8:26:60:00:01"),
        medium=medium, position=Position(5, 0, 1), rng=rng,
    )
    victim.connect(ap.mac, "IoTNet", "iot network key")
    engine.run_until(1.0)
    victim.enter_power_save()
    attacker = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:02"),
        medium=medium, position=Position(distance_m, 0, 1), rng=rng,
    )
    attack = BatteryDrainAttack(attacker, victim)
    points = attack.sweep(rates_pps=rates, duration_s=duration_s)
    peak = max(points, key=lambda p: p.average_power_mw)
    return {
        "baseline_power_mw": points[0].average_power_mw,
        "peak_power_mw": peak.average_power_mw,
        "amplification": BatteryDrainAttack.amplification(points),
        "acks_transmitted": sum(p.acks_transmitted for p in points),
        "frames_received": sum(p.frames_received for p in points),
    }
