"""Metric registry and snapshot algebra.

A :class:`MetricsRegistry` is the single object a simulation threads
through its components (``Engine(metrics=registry)`` propagates it to the
medium and every ACK engine).  Components call :meth:`counter` /
:meth:`gauge` / :meth:`histogram` once at construction and hold the
returned object, so the per-observation cost is a bound attribute update
with no dict lookup.

``snapshot()`` freezes the registry into plain nested dicts (sorted
keys), which is the only form that ever crosses process boundaries — the
campaign runner's workers each own a private registry and ship snapshots
back to the parent, where :func:`merge_snapshots` folds them in a fixed
order so the aggregate is byte-identical regardless of worker count.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.telemetry.metrics import Counter, Gauge, Histogram

__all__ = ["MetricsRegistry", "merge_snapshots", "WALL_TIME_MARKER"]

#: Metrics whose name contains this substring measure host wall-clock and
#: are excluded from determinism-sensitive aggregation.
WALL_TIME_MARKER = "wall_time"


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[[], None]] = []

    def add_collector(self, collect: Callable[[], None]) -> None:
        """Register a callback invoked before every :meth:`snapshot`.

        Components with their own cheap internal counters (the event
        engine counts events as plain ints on its hot path) publish them
        into registry metrics lazily via a collector instead of paying a
        metric update per operation.  A collector *sets* its metrics'
        values, so attach each component to at most one registry.
        """
        self._collectors.append(collect)

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------
    def counter(self, name: str, description: str = "") -> Counter:
        """The counter registered under ``name``, created on first use."""
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name)
            metric = self._counters[name] = Counter(name, description)
        return metric

    def gauge(self, name: str, description: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name)
            metric = self._gauges[name] = Gauge(name, description)
        return metric

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name)
            metric = self._histograms[name] = Histogram(name, description, buckets)
        return metric

    def _check_free(self, name: str) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Freeze current values into plain nested dicts with sorted keys."""
        for collect in self._collectors:
            collect()
        return {
            "counters": {
                name: self._counters[name].snapshot()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].snapshot()
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        from repro.telemetry.export import snapshot_to_json

        return snapshot_to_json(self.snapshot(), indent=indent)

    def to_csv(self) -> str:
        from repro.telemetry.export import snapshot_to_csv

        return snapshot_to_csv(self.snapshot())


def _empty_snapshot() -> Dict[str, Dict[str, object]]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(
    snapshots: Iterable[Dict[str, Dict[str, object]]],
    exclude: Optional[Callable[[str], bool]] = None,
) -> Dict[str, Dict[str, object]]:
    """Fold snapshots into one aggregate, in the order given.

    Counters and histogram counts/sums add; gauges keep the last value and
    the global high-water mark; histogram min/max widen.  ``exclude``
    drops metrics by name — the campaign runner uses it to strip
    wall-clock metrics (see :data:`WALL_TIME_MARKER`) so aggregates stay
    deterministic.  Callers needing worker-count-independent output must
    pass snapshots in a stable order (the campaign sorts by run index).
    """
    merged = _empty_snapshot()
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            if exclude is not None and exclude(name):
                continue
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, gauge in snap.get("gauges", {}).items():
            if exclude is not None and exclude(name):
                continue
            prior = merged["gauges"].get(name)
            merged["gauges"][name] = {
                "value": gauge["value"],
                "max": gauge["max"] if prior is None else max(prior["max"], gauge["max"]),
            }
        for name, hist in snap.get("histograms", {}).items():
            if exclude is not None and exclude(name):
                continue
            prior = merged["histograms"].get(name)
            if prior is None:
                merged["histograms"][name] = {
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                    "mean": hist["mean"],
                    "buckets": dict(hist["buckets"]),
                }
                continue
            prior["count"] += hist["count"]
            prior["sum"] += hist["sum"]
            prior["min"] = _widen(prior["min"], hist["min"], min)
            prior["max"] = _widen(prior["max"], hist["max"], max)
            prior["mean"] = prior["sum"] / prior["count"] if prior["count"] else 0.0
            for label, count in hist["buckets"].items():
                prior["buckets"][label] = prior["buckets"].get(label, 0) + count
    # Re-sort so the aggregate's key order never depends on which run
    # introduced a metric first.
    return {
        section: {name: merged[section][name] for name in sorted(merged[section])}
        for section in ("counters", "gauges", "histograms")
    }


def _widen(a: Optional[float], b: Optional[float], pick: Callable) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return pick(a, b)
