"""Span-style wall-clock tracing of simulation phases.

Benchmarks want to know where wall time goes — city generation vs the
drive vs result aggregation — without paying for that visibility when it
is off.  :class:`SpanTracer` hands out context managers::

    tracer = SpanTracer()
    with tracer.span("build-city"):
        city = SyntheticCity(...)
    with tracer.span("drive"):
        pipeline.run()
    print(tracer.report())

A disabled tracer (``SpanTracer(enabled=False)``, or the module-level
:data:`NULL_TRACER`) returns one shared no-op context manager and
allocates nothing, so instrumented code can call ``tracer.span(...)``
unconditionally: the disabled path costs one attribute check and one
method call — unmeasurable next to any real phase.

Spans nest; the recorded depth lets :meth:`SpanTracer.report` indent the
tree.  Timing uses ``time.perf_counter`` (monotonic, sub-microsecond).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["SpanRecord", "SpanTracer", "NULL_TRACER"]


@dataclass
class SpanRecord:
    """One completed span."""

    name: str
    start_s: float
    duration_s: float
    depth: int


class _NullSpan:
    """Shared no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "_name", "_start", "_depth")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._depth
        self._tracer._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start
        self._tracer._depth -= 1
        self._tracer.records.append(
            SpanRecord(
                name=self._name,
                start_s=self._start,
                duration_s=duration,
                depth=self._depth,
            )
        )


class SpanTracer:
    """Collects timed spans; near-free when disabled."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[SpanRecord] = []
        self._depth = 0

    def span(self, name: str):
        """Context manager timing the enclosed block (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def reset(self) -> None:
        self.records.clear()
        self._depth = 0

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: call count and total seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            entry = out.setdefault(record.name, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += record.duration_s
        return out

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready per-name totals (what manifests embed)."""
        return {name: dict(entry) for name, entry in self.totals().items()}

    def bind(self, registry) -> None:
        """Export span totals into ``registry`` at snapshot time.

        Registers a collector that publishes, per span name, two
        counters: ``span.<name>.wall_time_s`` (total seconds — the
        ``wall_time`` marker keeps host timing out of deterministic
        campaign aggregates) and ``span.<name>.count`` (how often the
        phase ran, which *is* deterministic).  With this bound, spans
        ride the same snapshot/manifest artifact as every other metric.
        """

        def collect() -> None:
            for name, entry in self.totals().items():
                registry.counter(
                    f"span.{name}.wall_time_s",
                    "host wall-clock seconds inside this span",
                ).value = entry["total_s"]
                registry.counter(
                    f"span.{name}.count", "completed spans under this name"
                ).value = entry["count"]

        registry.add_collector(collect)

    def report(self) -> str:
        """Chronological indented tree of recorded spans."""
        if not self.records:
            return "(no spans recorded)"
        ordered = sorted(self.records, key=lambda r: r.start_s)
        width = max(len("  " * r.depth + r.name) for r in ordered)
        lines = []
        for record in ordered:
            label = "  " * record.depth + record.name
            lines.append(f"{label.ljust(width)}  {record.duration_s * 1e3:10.3f} ms")
        return "\n".join(lines)


#: Shared disabled tracer for code paths that want tracing to be optional
#: without carrying an ``Optional[SpanTracer]`` everywhere.
NULL_TRACER = SpanTracer(enabled=False)
