"""Observability and orchestration for the simulator.

Three cooperating pieces (see ``docs/telemetry.md``):

* **metrics** — :class:`MetricsRegistry` hands out counters, gauges, and
  histograms that the engine, medium, and ACK engines update on their hot
  paths (zero-cost when no registry is attached);
* **tracing** — :class:`SpanTracer` times simulation phases with span
  context managers, free when disabled;
* **campaigns** — :func:`run_campaign` fans a registered scenario out
  across seeds × parameter grids with ``multiprocessing``, writes a run
  manifest, and produces worker-count-independent aggregates.
"""

from repro.telemetry.campaign import (
    CampaignConfig,
    CampaignRunError,
    MissingShardsError,
    RunTimeoutError,
    ShardMismatchError,
    available_scenarios,
    get_scenario,
    merge_manifest_files,
    merge_manifests,
    parse_sidecar_record,
    parse_sidecar_text,
    run_campaign,
    scenario,
    shard_manifest_path,
    shard_run_indices,
    summarize_manifest,
)
from repro.telemetry.compare import (
    compare_manifest_files,
    compare_manifests,
    format_comparison,
)
from repro.telemetry.export import (
    load_manifest,
    manifest_to_json,
    snapshot_from_json,
    snapshot_to_csv,
    snapshot_to_json,
    status_to_json,
    write_manifest,
    write_snapshot,
    write_status,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram
from repro.telemetry.registry import MetricsRegistry, merge_snapshots
from repro.telemetry.spans import NULL_TRACER, SpanRecord, SpanTracer

__all__ = [
    "CampaignConfig",
    "CampaignRunError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MissingShardsError",
    "NULL_TRACER",
    "RunTimeoutError",
    "ShardMismatchError",
    "SpanRecord",
    "SpanTracer",
    "available_scenarios",
    "compare_manifest_files",
    "compare_manifests",
    "format_comparison",
    "get_scenario",
    "load_manifest",
    "manifest_to_json",
    "merge_manifest_files",
    "merge_manifests",
    "merge_snapshots",
    "parse_sidecar_record",
    "parse_sidecar_text",
    "run_campaign",
    "scenario",
    "shard_manifest_path",
    "shard_run_indices",
    "snapshot_from_json",
    "snapshot_to_csv",
    "snapshot_to_json",
    "status_to_json",
    "summarize_manifest",
    "write_manifest",
    "write_snapshot",
    "write_status",
]
