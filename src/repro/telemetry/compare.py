"""``campaign compare``: diff two run manifests.

Answers the question every reproducibility claim eventually faces: *did
these two sweeps run the same campaign, and did they get the same
answer?*  Two manifests are compared on three levels:

* **identity** — scenario (name + fingerprint), seeds, base params,
  grid: disagreements mean the manifests describe *different*
  campaigns;
* **results** — the deterministic ``aggregate`` section (metrics +
  summed outputs, numeric deltas reported per key) and each run's
  ``outputs``: disagreements mean the same campaign produced different
  answers — a determinism break, the thing this repo pins hardest;
* **host** — git revision, repro version, worker count, durations:
  *reported* but never failing, because re-running a campaign on a
  different box or commit is exactly when you want to compare.

:func:`compare_manifests` returns a structured report;
:func:`format_comparison` renders it; the CLI exits non-zero on any
identity or result mismatch.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.export import load_manifest

__all__ = [
    "compare_manifest_files",
    "compare_manifests",
    "format_comparison",
]

#: Fields that define *which campaign* a manifest describes.
_IDENTITY_FIELDS = (
    "scenario",
    "scenario_fingerprint",
    "seeds",
    "base_params",
    "grid",
)

#: Host-side fields worth surfacing but never worth failing over.
_HOST_FIELDS = ("repro_version", "git_rev", "workers", "total_duration_s")


def _flatten(prefix: str, value: object, out: Dict[str, object]) -> None:
    """``{"a": {"b": 1}}`` -> ``{"a.b": 1}`` so diffs name leaf keys."""
    if isinstance(value, dict):
        for key in value:
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    else:
        out[prefix] = value


def _diff_leaves(
    left: object, right: object
) -> List[Dict[str, object]]:
    """Leaf-level differences between two nested dicts, sorted by key.

    Numeric differences carry a ``delta`` (right minus left) so an
    aggregate drift reads as "+120 events", not two opaque numbers.
    """
    flat_left: Dict[str, object] = {}
    flat_right: Dict[str, object] = {}
    _flatten("", left, flat_left)
    _flatten("", right, flat_right)
    diffs: List[Dict[str, object]] = []
    for key in sorted(set(flat_left) | set(flat_right)):
        a = flat_left.get(key, "<absent>")
        b = flat_right.get(key, "<absent>")
        if a == b:
            continue
        entry: Dict[str, object] = {"key": key, "a": a, "b": b}
        if (
            isinstance(a, (int, float)) and isinstance(b, (int, float))
            and not isinstance(a, bool) and not isinstance(b, bool)
        ):
            entry["delta"] = b - a
        diffs.append(entry)
    return diffs


def _run_outputs_by_index(
    manifest: Dict[str, object]
) -> Dict[int, Dict[str, object]]:
    return {
        int(run["index"]): {
            "seed": run.get("seed"),
            "params": run.get("params"),
            "status": run.get("status", "ok"),
            "outputs": run.get("outputs", {}),
        }
        for run in manifest.get("runs", [])
    }


def compare_manifests(
    left: Dict[str, object],
    right: Dict[str, object],
    labels: Tuple[str, str] = ("a", "b"),
) -> Dict[str, object]:
    """Structured comparison of two campaign manifests.

    The report's ``match`` is True iff identity, aggregate, and per-run
    outputs all agree; ``host`` differences never affect it.
    """
    identity = {
        field: {"a": left.get(field), "b": right.get(field)}
        for field in _IDENTITY_FIELDS
        if left.get(field) != right.get(field)
    }
    aggregate = _diff_leaves(
        left.get("aggregate") or {}, right.get("aggregate") or {}
    )
    runs_left = _run_outputs_by_index(left)
    runs_right = _run_outputs_by_index(right)
    run_diffs: List[Dict[str, object]] = []
    for index in sorted(set(runs_left) | set(runs_right)):
        a = runs_left.get(index)
        b = runs_right.get(index)
        if a != b:
            run_diffs.append({"index": index, "a": a, "b": b})
    host = {
        field: {"a": left.get(field), "b": right.get(field)}
        for field in _HOST_FIELDS
        if left.get(field) != right.get(field)
    }
    return {
        "labels": {"a": labels[0], "b": labels[1]},
        "match": not identity and not aggregate and not run_diffs,
        "identity": identity,
        "aggregate": aggregate,
        "runs": {
            "a_count": len(runs_left),
            "b_count": len(runs_right),
            "differing": run_diffs,
        },
        "host": host,
    }


def compare_manifest_files(
    left_path: Union[str, pathlib.Path],
    right_path: Union[str, pathlib.Path],
) -> Dict[str, object]:
    """Load two manifests from disk and compare them."""
    return compare_manifests(
        load_manifest(left_path),
        load_manifest(right_path),
        labels=(str(left_path), str(right_path)),
    )


def _format_value(value: object, limit: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def format_comparison(
    report: Dict[str, object], max_rows: Optional[int] = 20
) -> str:
    """Human-readable rendering of a :func:`compare_manifests` report."""
    labels = report["labels"]
    lines = [f"a: {labels['a']}", f"b: {labels['b']}"]
    identity = report["identity"]
    aggregate = report["aggregate"]
    run_diffs: Sequence[Dict[str, object]] = report["runs"]["differing"]
    if report["match"]:
        lines.append(
            f"MATCH: same campaign, same aggregate, "
            f"{report['runs']['a_count']} run(s) identical"
        )
    if identity:
        lines.append("IDENTITY MISMATCH (these are different campaigns):")
        for field in sorted(identity):
            pair = identity[field]
            lines.append(
                f"  {field:<22} a={_format_value(pair['a'])}  "
                f"b={_format_value(pair['b'])}"
            )
    if report["runs"]["a_count"] != report["runs"]["b_count"]:
        lines.append(
            f"RUN COUNT MISMATCH: a has {report['runs']['a_count']}, "
            f"b has {report['runs']['b_count']}"
        )
    if aggregate:
        lines.append(f"AGGREGATE MISMATCH ({len(aggregate)} key(s) differ):")
        shown = aggregate if max_rows is None else aggregate[:max_rows]
        for entry in shown:
            delta = (
                f"  (delta {entry['delta']:+g})" if "delta" in entry else ""
            )
            lines.append(
                f"  {entry['key']:<40} a={_format_value(entry['a'], 24)}  "
                f"b={_format_value(entry['b'], 24)}{delta}"
            )
        if max_rows is not None and len(aggregate) > max_rows:
            lines.append(f"  ... and {len(aggregate) - max_rows} more")
    if run_diffs:
        lines.append(f"RUN OUTPUT MISMATCH ({len(run_diffs)} run(s) differ):")
        shown = run_diffs if max_rows is None else run_diffs[:max_rows]
        for entry in shown:
            lines.append(
                f"  run {entry['index']}: a={_format_value(entry['a'])}  "
                f"b={_format_value(entry['b'])}"
            )
        if max_rows is not None and len(run_diffs) > max_rows:
            lines.append(f"  ... and {len(run_diffs) - max_rows} more")
    host = report["host"]
    if host:
        lines.append("host differences (informational, never fail the compare):")
        for field in sorted(host):
            pair = host[field]
            lines.append(
                f"  {field:<22} a={_format_value(pair['a'], 28)}  "
                f"b={_format_value(pair['b'], 28)}"
            )
    return "\n".join(lines)
