"""Polite WiFi — a full reproduction of *WiFi Says "Hi!" Back to
Strangers!* (Abedi & Abari, HotNets 2020) on a pure-Python 802.11
PHY/MAC simulator.

Quick taste (see ``examples/quickstart.py`` for the narrated version)::

    import numpy as np
    from repro import (
        Engine, Medium, Position, Station, MonitorDongle,
        PoliteWiFiProbe, MacAddress, ATTACKER_FAKE_MAC,
    )

    rng = np.random.default_rng(0)
    engine = Engine()
    medium = Medium(engine)
    victim = Station(mac=MacAddress("f2:6e:0b:11:22:33"), medium=medium,
                     position=Position(0, 0), rng=rng)
    attacker = MonitorDongle(mac=ATTACKER_FAKE_MAC, medium=medium,
                             position=Position(5, 0), rng=rng)
    result = PoliteWiFiProbe(attacker).probe(victim.mac)
    assert result.responded   # WiFi says hi back to a stranger.

Package map:

==================  ====================================================
``repro.core``      the contribution: probe, wardrive, keystroke attack,
                    battery drain, single-device sensing, defenses
``repro.sim``       discrete-event engine, medium, world, trace
``repro.phy``       802.11 PHY: timing, FCS, rates, airtime, radio
``repro.mac``       frames, wire format, **ACK engine**, state machines
``repro.crypto``    AES/CCMP/WPA2 + decode-latency model
``repro.channel``   propagation, fading, CSI synthesis, human motion
``repro.devices``   stations, APs, ESP8266/ESP32, dongle, power, vendors
``repro.survey``    synthetic city + passive scanner + Table 2 results
``repro.sensing``   CSI processing, segmentation, classifiers
``repro.baselines`` WindTalker, two-device sensing, Intel 5300 CSI tool
``repro.analysis``  tables, figure series, stats
``repro.telemetry`` metrics registry, span tracing, campaign runner
==================  ====================================================
"""

from repro.core import (
    AckMonitor,
    BatteryDrainAttack,
    DefenseAnalysis,
    FakeFrameInjector,
    KeystrokeInferenceAttack,
    PoliteWiFiProbe,
    ProbeResult,
    SingleDeviceSensingHub,
    WardriveConfig,
    WardrivePipeline,
)
from repro.devices import (
    AccessPoint,
    Esp32CsiSniffer,
    Esp8266Device,
    MonitorDongle,
    Station,
)
from repro.mac import ATTACKER_FAKE_MAC, MacAddress
from repro.sim import Engine, FrameTrace, Medium, Position
from repro.telemetry import (
    CampaignConfig,
    MetricsRegistry,
    SpanTracer,
    run_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "ATTACKER_FAKE_MAC",
    "AccessPoint",
    "AckMonitor",
    "BatteryDrainAttack",
    "CampaignConfig",
    "DefenseAnalysis",
    "Engine",
    "Esp32CsiSniffer",
    "Esp8266Device",
    "FakeFrameInjector",
    "FrameTrace",
    "KeystrokeInferenceAttack",
    "MacAddress",
    "Medium",
    "MetricsRegistry",
    "MonitorDongle",
    "PoliteWiFiProbe",
    "Position",
    "ProbeResult",
    "SingleDeviceSensingHub",
    "SpanTracer",
    "Station",
    "WardriveConfig",
    "WardrivePipeline",
    "__version__",
    "run_campaign",
]
