"""802.11 power-save mode.

Battery-operated clients (the paper's ESP8266 target) keep their radio off
almost all the time, waking briefly for every DTIM beacon and going back
to sleep once the medium has been idle for an inactivity timeout.  The
battery-drain attack of Section 4.2 works precisely against this state
machine: once fake frames arrive faster than the inactivity timeout, the
radio never gets to sleep again — the measured power jumps from ~10 mW to
~230 mW at roughly 10 packets/s and then climbs linearly with the rate as
each extra frame costs RX + ACK-TX + processing energy.

:class:`PowerSaveController` implements the sleep/wake scheduling; the
energy integration lives in :mod:`repro.devices.power_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.phy.radio import Radio
from repro.sim.engine import Engine, Event

#: Typical consumer defaults: beacons every 102.4 ms, DTIM period 3,
#: ~100 ms of post-traffic inactivity before the radio sleeps again.
DEFAULT_BEACON_INTERVAL = 0.1024
DEFAULT_DTIM_PERIOD = 3
DEFAULT_IDLE_TIMEOUT = 0.100
DEFAULT_LISTEN_WINDOW = 0.005


@dataclass
class PowerSaveConfig:
    beacon_interval: float = DEFAULT_BEACON_INTERVAL
    dtim_period: int = DEFAULT_DTIM_PERIOD
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT
    listen_window: float = DEFAULT_LISTEN_WINDOW

    @property
    def dtim_interval(self) -> float:
        return self.beacon_interval * self.dtim_period

    @property
    def pinning_rate_pps(self) -> float:
        """Packet rate above which the radio can never sleep (≈10 pkt/s
        with the defaults, matching the knee of Figure 6)."""
        return 1.0 / self.idle_timeout


class PowerSaveController:
    """Drives a radio's sleep/wake cycle.

    Lifecycle: :meth:`start` schedules the periodic DTIM wakeups.  Any
    call to :meth:`note_activity` (the device calls it for every unicast
    frame it receives and every frame it transmits) extends the awake
    period by the inactivity timeout.  When neither the DTIM listen
    window nor the activity hold-off keeps the radio up, it sleeps.
    """

    def __init__(
        self,
        radio: Radio,
        engine: Engine,
        config: Optional[PowerSaveConfig] = None,
        first_dtim_time: float = 0.0,
    ) -> None:
        self.radio = radio
        self.engine = engine
        self.config = config if config is not None else PowerSaveConfig()
        self.first_dtim_time = first_dtim_time
        self.enabled = False
        self._awake_until = 0.0
        self._sleep_event: Optional[Event] = None
        self._next_dtim: Optional[float] = None
        self.wakeups = 0
        self.sleeps = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Enable power save; the radio sleeps except around DTIM beacons."""
        self.enabled = True
        self._schedule_next_dtim()
        self._hold_awake(self.config.listen_window)

    def stop(self) -> None:
        """Disable power save; the radio stays awake (mains-powered mode)."""
        self.enabled = False
        if self._sleep_event is not None:
            self._sleep_event.cancel()
            self._sleep_event = None
        self.radio.wake()

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------
    def note_activity(self) -> None:
        """Traffic touched this device: restart the inactivity timer."""
        if not self.enabled:
            return
        self._hold_awake(self.config.idle_timeout)

    def _hold_awake(self, duration: float) -> None:
        now = self.engine.now
        if not self.radio.is_awake:
            self.radio.wake()
            self.wakeups += 1
        until = now + duration
        if until <= self._awake_until:
            return
        self._awake_until = until
        if self._sleep_event is not None:
            self._sleep_event.cancel()
        self._sleep_event = self.engine.call_at(until, self._maybe_sleep)

    def _maybe_sleep(self) -> None:
        self._sleep_event = None
        if not self.enabled:
            return
        if self.engine.now + 1e-12 < self._awake_until:
            return
        if self.radio.is_transmitting:
            # Finish the frame on the air, then try again.
            self._sleep_event = self.engine.call_after(1e-4, self._maybe_sleep)
            return
        if self.radio.is_awake:
            self.radio.sleep()
            self.sleeps += 1

    # ------------------------------------------------------------------
    # DTIM schedule
    # ------------------------------------------------------------------
    def _schedule_next_dtim(self) -> None:
        if not self.enabled:
            return
        now = self.engine.now
        interval = self.config.dtim_interval
        if self._next_dtim is None:
            elapsed = max(now - self.first_dtim_time, 0.0)
            periods = int(elapsed / interval) + 1
            self._next_dtim = self.first_dtim_time + periods * interval
        # Force strict progress: float rounding must never let the next
        # DTIM land at (or before) the current instant, which would spin
        # the event loop at a frozen simulation time.
        while self._next_dtim <= now + 1e-12:
            self._next_dtim += interval
        self.engine.call_at(self._next_dtim, self._on_dtim)

    def _on_dtim(self) -> None:
        if not self.enabled:
            return
        self._hold_awake(self.config.listen_window)
        self._schedule_next_dtim()
