"""The PHY-level acknowledgement engine — the Polite WiFi root cause.

IEEE 802.11 requires that a receiver start transmitting the ACK exactly one
SIFS after the end of any correctly-received (FCS-passing) unicast frame
addressed to it, and a CTS one SIFS after any RTS.  SIFS is 10 µs at
2.4 GHz — far too short to consult the MAC, the driver, or the operating
system, let alone run CCMP decryption (200–700 µs).  The consequence the
paper discovers is that this automaton answers *strangers*: a fake,
unencrypted frame from a device that was never part of the network is
acknowledged like any other, because the only checks that fit in the
deadline are the CRC and the receiver-address match.

:class:`AckEngine` implements exactly that automaton.  Politeness is not a
hard-coded "vulnerability flag": it emerges from implementing the standard
faithfully.  The ablation hooks (:attr:`AckEngineConfig.validate_before_ack`)
model the *hypothetical* checking device of Section 2.2 so the benchmarks
can show why it cannot meet the deadline.

Everything above this module (association state, blocklists, deauth logic,
802.11w) runs *after* the ACK decision — which is why the access point in
Figure 3 deauthenticates the attacker and still acknowledges its frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.mac.addresses import MacAddress
from repro.mac.frames import AckFrame, CtsFrame, Frame, FrameType
from repro.mac.serialization import FrameFormatError, deserialize
from repro.phy.constants import Band, sifs
from repro.phy.plcp import cts_airtime
from repro.phy.radio import Radio, _SLEEP
from repro.phy.rates import ack_rate_for
from repro.sim.medium import LANE_FCS_FAIL, LANE_NOT_FOR_ME, Reception

#: How many (transmitter, sequence) pairs the duplicate cache remembers.
_DUPLICATE_CACHE_SIZE = 64


@dataclass
class AckEngineConfig:
    """Behavioural knobs of the receive-side PHY/low-MAC automaton.

    The defaults model every real device the paper tested.  The other
    settings exist purely for the defense-feasibility ablations:

    ``validate_before_ack``
        The hypothetical device that verifies frame legitimacy before
        acknowledging.  The ``validator`` callback returns
        ``(is_legitimate, decode_time_s)``; the ACK (if the frame proves
        legitimate) is only transmitted after the decode time, so it
        always misses the SIFS deadline (the transmitter will long since
        have declared the frame lost).
    ``respond_to_rts``
        Disable to model a device that somehow suppressed CTS responses —
        the standard does not permit this, since control frames cannot be
        encrypted and channel reservation must work network-wide.
    """

    band: Band = Band.GHZ_2_4
    respond_to_rts: bool = True
    validate_before_ack: bool = False
    validator: Optional[Callable[[Frame], Tuple[bool, float]]] = None
    promiscuous: bool = False


@dataclass
class AckEngineStats:
    """Counters the tests and benchmarks assert on."""

    frames_seen: int = 0
    fcs_failures: int = 0
    acks_sent: int = 0
    cts_sent: int = 0
    acks_suppressed_by_validation: int = 0
    late_acks: int = 0
    duplicates_dropped: int = 0
    passed_up: int = 0


class AckEngine:
    """Receive-side automaton bound to one radio.

    Wire-up: the engine installs itself as the radio's ``frame_handler``;
    the device's upper MAC subscribes via :attr:`mac_handler` (data and
    management frames that survive duplicate filtering) and
    :attr:`control_handler` (ACK/CTS addressed to us, consumed by the
    retransmitting transmitter).
    """

    def __init__(
        self,
        radio: Radio,
        mac_address: MacAddress,
        config: Optional[AckEngineConfig] = None,
        metrics=None,
    ) -> None:
        self.radio = radio
        self.mac_address = MacAddress(mac_address)
        self.config = config if config is not None else AckEngineConfig()
        self.stats = AckEngineStats()
        # Default to the simulation-wide registry threaded through the
        # engine/medium, so instrumenting the Engine instruments every
        # device's ACK automaton with shared counters.
        self.metrics = metrics if metrics is not None else radio.medium.metrics
        self._ctr_acks = None
        self._ctr_cts = None
        self._hist_gap = None
        if self.metrics is not None:
            self._ctr_acks = self.metrics.counter(
                "ack.acks_sent", "acknowledgements transmitted"
            )
            self._ctr_cts = self.metrics.counter(
                "ack.cts_sent", "clear-to-send responses transmitted"
            )
            self._hist_gap = self.metrics.histogram(
                "ack.response_gap_us",
                "gap between frame end and the scheduled ACK/CTS (us); "
                "SIFS unless a validation ablation delays it",
                buckets=(10.0, 16.0, 25.0, 50.0, 100.0, 250.0, 1000.0),
            )
        self.mac_handler: Optional[Callable[[Frame, Reception], None]] = None
        self.control_handler: Optional[Callable[[Frame, Reception], None]] = None
        self.sniffer_handler: Optional[Callable[[Frame, Reception], None]] = None
        # Passivity contracts for the batched reception fast lanes (see
        # install_sniffer / install_mac_handler).  The identity fields
        # remember which handler the contract was made for: code that
        # later assigns `sniffer_handler` / `mac_handler` directly (tests
        # do) breaks the identity match and every arrival falls back to
        # the scalar path — never an incorrect fast verdict.
        self._passive_sniffer: Optional[Callable] = None
        self._sniffer_passive_check: Optional[Callable[[], bool]] = None
        self._passive_mac: Optional[Callable] = None
        self._mac_passive_probe: Optional[Callable[[tuple], bool]] = None
        #: (ftype, subtype) -> probe verdict, cleared when the contract
        #: is reinstalled.  The probe itself memoizes per device class;
        #: this engine-local mirror just skips the call on the hot lane.
        self._passive_keys: Dict[tuple, bool] = {}
        self._duplicate_cache: Dict[Tuple[MacAddress, int, int], None] = {}
        # Hot-path caches: the config flag and own-address bytes are
        # immutable after construction and read on every reception.
        self._promiscuous = self.config.promiscuous
        self._mac_value = self.mac_address._value
        # A (nonstandard) group-bit own address would tie with the
        # group-destination test; the fast lanes refuse to guess and the
        # scalar path keeps its exact address-match semantics.
        self._group_mac = bool(self._mac_value[0] & 0x01)
        radio.frame_handler = self._on_reception
        # Assigning frame_handler cleared the batch hook; install ours
        # after it, plus the receive MAC the medium's vectorized
        # pre-filter classifies against.  The radio attached before this
        # engine existed, so tell the medium the addressing changed.
        radio.frame_handler_batch = self._on_reception_lane
        radio.rx_mac_u64 = int.from_bytes(self._mac_value, "big")
        medium = getattr(radio, "medium", None)
        if medium is not None:
            note = getattr(medium, "note_addressing_changed", None)
            if note is not None:
                note(radio.name)

    # ------------------------------------------------------------------
    # Handler installation (batch-lane passivity contracts)
    # ------------------------------------------------------------------
    def install_sniffer(
        self,
        handler: Callable[[Frame, Reception], None],
        passive_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Set :attr:`sniffer_handler`, optionally with a passivity contract.

        ``passive_check()`` returning ``True`` promises that ``handler``
        currently has no observable effect for any frame, so the batched
        fast lanes may skip invoking it.  It is re-evaluated per span
        (cheap attribute checks), letting passivity change at runtime.
        """
        self.sniffer_handler = handler
        self._passive_sniffer = handler if passive_check is not None else None
        self._sniffer_passive_check = passive_check

    def install_mac_handler(
        self,
        handler: Callable[[Frame, Reception], None],
        passive_probe: Optional[Callable[[tuple], bool]] = None,
    ) -> None:
        """Set :attr:`mac_handler`, optionally with a passivity contract.

        ``passive_probe((ftype, subtype))`` returning ``True`` promises
        that ``handler`` is a no-op for group frames of that type — the
        wardrive's dominant traffic (beacons heard by hundreds of idle
        stations), which then never leaves the counter-only fast lane.
        """
        self.mac_handler = handler
        self._passive_mac = handler if passive_probe is not None else None
        self._mac_passive_probe = passive_probe
        self._passive_keys = {}

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_reception_lane(self, lane: int, span, index: int) -> bool:
        """Batched fast path: account for a pre-classified arrival.

        Installed as the radio's ``frame_handler_batch``, which the
        medium caches directly as the delivery sink — so the radio-level
        contract (the sleep drop, the ``frames_delivered`` bump) is
        applied here rather than in :meth:`Radio.on_reception_batch`.
        Consumes the lanes whose scalar handling is pure counter
        arithmetic — below-FCS, clean-but-not-for-me, and group frames
        whose handlers are contractually passive — and returns ``False``
        for everything else (for-me unicast with its ACK scheduling,
        promiscuous capture, any non-passive handler), sending the
        medium through the byte-identical scalar path instead.  Mutates
        nothing before returning ``False``.
        """
        radio = self.radio
        if radio._state is _SLEEP:
            radio.frames_dropped_asleep += 1
            return True
        stats = self.stats
        if lane == LANE_FCS_FAIL:
            stats.frames_seen += 1
            stats.fcs_failures += 1
            radio.frames_delivered += 1
            return True
        if self._promiscuous:
            return False
        sniffer = self.sniffer_handler
        if sniffer is not None and (
            sniffer is not self._passive_sniffer
            or not self._sniffer_passive_check()
        ):
            return False
        if lane == LANE_NOT_FOR_ME:
            stats.frames_seen += 1
            radio.frames_delivered += 1
            return True
        # LANE_GROUP: delivered to the MAC handler in the scalar path —
        # consumable only when that handler is contractually passive for
        # this frame type (or absent).
        if self._group_mac:
            return False
        handler = self.mac_handler
        if handler is None:
            stats.frames_seen += 1
            stats.passed_up += 1
            radio.frames_delivered += 1
            return True
        key = span.frame_key
        if handler is self._passive_mac and key is not None:
            # The probe's verdict is structural (which methods the device
            # class overrides) and permanently memoized per class, so the
            # per-engine memo here cannot go stale ahead of it.
            verdict = self._passive_keys.get(key)
            if verdict is None:
                verdict = self._mac_passive_probe(key)
                self._passive_keys[key] = verdict
            if verdict:
                stats.frames_seen += 1
                stats.passed_up += 1
                radio.frames_delivered += 1
                return True
        return False

    def _on_reception(self, reception: Reception) -> None:
        stats = self.stats
        stats.frames_seen += 1
        if not reception.fcs_ok:
            # The PHY silently discards frames that fail the CRC; nothing
            # above ever learns they existed, and no ACK is generated.
            stats.fcs_failures += 1
            return
        payload = reception.frame
        if isinstance(payload, Frame):
            frame = payload
        else:
            # Raw PSDU bytes: the CRC check + parse is identical for every
            # receiver of this transmission, so the first arrival caches
            # the decoded frame on the shared Transmission record and the
            # other N-1 receivers reuse it.  Received frames are treated
            # as immutable everywhere, so sharing one instance is safe.
            cache = reception.transmission.rx_cache
            if cache is None:
                cache = reception.transmission.rx_cache = {}
            try:
                frame = cache["frame"]
            except KeyError:
                frame = cache["frame"] = self._as_frame(payload)
        if frame is None:
            stats.fcs_failures += 1
            return
        if self.sniffer_handler is not None:
            self.sniffer_handler(frame, reception)
        if self._promiscuous:
            # Monitor-mode interfaces capture everything and answer nothing.
            return
        addr1 = frame.addr1
        if addr1._value != self._mac_value:
            if addr1._value[0] & 0x01:  # group bit: multicast/broadcast
                # _pass_up inlined: group frames dominate the wardrive
                # receive path (beacons/probes heard by hundreds of radios).
                stats.passed_up += 1
                handler = self.mac_handler
                if handler is not None:
                    handler(frame, reception)
            return

        # --- From here on the frame is addressed to us and passed the FCS.
        # This is the entirety of what fits inside SIFS.
        if frame.ftype is FrameType.CONTROL:
            self._handle_control(frame, reception)
            return
        self._schedule_ack(frame, reception)
        self._pass_up_unicast(frame, reception)

    @staticmethod
    def _as_frame(payload: object) -> Optional[Frame]:
        """Accept both typed frames and raw PSDU bytes off the air."""
        if isinstance(payload, Frame):
            return payload
        raw = getattr(payload, "psdu", payload)
        if isinstance(raw, (bytes, bytearray)):
            try:
                return deserialize(bytes(raw))
            except FrameFormatError:
                return None
        return None

    # ------------------------------------------------------------------
    # Control responses
    # ------------------------------------------------------------------
    def _handle_control(self, frame: Frame, reception: Reception) -> None:
        if frame.is_rts and self.config.respond_to_rts:
            self._schedule_cts(frame, reception)
            return
        if (frame.is_ack or frame.is_cts) and self.control_handler is not None:
            self.control_handler(frame, reception)

    def _schedule_cts(self, rts: Frame, reception: Reception) -> None:
        """CTS one SIFS after the RTS — mandatory, unencryptable, and the
        reason Polite WiFi survives even a hypothetical instant validator."""
        gap = sifs(self.config.band)
        rate = ack_rate_for(reception.rate_mbps)
        remaining = rts.duration_us * 1e-6 - gap - cts_airtime(rate)
        cts = CtsFrame(
            ra=rts.addr2 if rts.addr2 is not None else rts.addr1,
            duration_us=max(int(remaining * 1e6), 0),
        )

        def send() -> None:
            self.radio.transmit(cts, rate)
            self.stats.cts_sent += 1
            if self._ctr_cts is not None:
                self._ctr_cts.inc()

        if self._hist_gap is not None:
            self._hist_gap.observe(gap * 1e6)
        self.radio.medium.engine.call_after(gap, send)

    def _schedule_ack(self, frame: Frame, reception: Reception) -> None:
        if not frame.needs_ack:
            return
        rate = ack_rate_for(reception.rate_mbps)
        ack = AckFrame(ra=frame.addr2 if frame.addr2 is not None else frame.addr1)
        gap = sifs(self.config.band)

        if self.config.validate_before_ack:
            # Hypothetical checking device (Section 2.2 ablation): the ACK
            # waits for full frame validation.  Decode takes 200-700 us,
            # so the ACK — when it comes at all — is hopelessly late.
            validator = self.config.validator
            if validator is None:
                raise RuntimeError(
                    "validate_before_ack requires a validator callback"
                )
            legitimate, decode_time = validator(frame)
            if not legitimate:
                self.stats.acks_suppressed_by_validation += 1
                return
            if decode_time > gap:
                self.stats.late_acks += 1
            gap = max(gap, decode_time)

        def send() -> None:
            self.radio.transmit(ack, rate)
            self.stats.acks_sent += 1
            if self._ctr_acks is not None:
                self._ctr_acks.inc()

        if self._hist_gap is not None:
            self._hist_gap.observe(gap * 1e6)
        self.radio.medium.engine.call_after(gap, send)

    # ------------------------------------------------------------------
    # Pass-up to the real MAC (runs long after the ACK decision)
    # ------------------------------------------------------------------
    def _pass_up_unicast(self, frame: Frame, reception: Reception) -> None:
        key = None
        if frame.addr2 is not None:
            key = (frame.addr2, frame.sequence, frame.fragment)
        if frame.retry and key is not None and key in self._duplicate_cache:
            # Duplicates are *still acknowledged* (the ACK already went out
            # above); they are merely not delivered twice.
            self.stats.duplicates_dropped += 1
            return
        if key is not None:
            self._duplicate_cache[key] = None
            while len(self._duplicate_cache) > _DUPLICATE_CACHE_SIZE:
                self._duplicate_cache.pop(next(iter(self._duplicate_cache)))
        self.stats.passed_up += 1
        if self.mac_handler is not None:
            self.mac_handler(frame, reception)

    def _pass_up(self, frame: Frame, reception: Reception) -> None:
        self.stats.passed_up += 1
        if self.mac_handler is not None:
            self.mac_handler(frame, reception)
