"""Retransmitting MAC transmitter.

Implements the send half of the data path: transmit a frame, arm the ACK
timeout (SIFS + slack — if no ACK has *started* arriving by then the frame
is presumed lost), and retransmit with the Retry bit set and a widened
contention window, up to the retry limit.

This is the machinery that makes Polite WiFi observable from the attacker
side: the attacker's injector uses the same transmitter, so "the victim
acknowledged" and "the victim did not acknowledge" are distinguished the
same way a real NIC distinguishes them — by whether an ACK addressed to
the spoofed transmitter address arrives inside the timeout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.mac.ack_engine import AckEngine
from repro.mac.addresses import MacAddress
from repro.mac.frames import Frame
from repro.mac.timing import DcfTimer
from repro.phy.constants import Band, ack_timeout
from repro.phy.plcp import ack_airtime, frame_airtime
from repro.phy.radio import Radio
from repro.phy.rates import ack_rate_for
from repro.sim.engine import Engine, Event
from repro.sim.medium import Reception

#: Default long-retry limit (802.11 dot11LongRetryLimit is 4; consumer
#: drivers commonly retry 7 times).
DEFAULT_RETRY_LIMIT = 7


class TxOutcome(enum.Enum):
    ACKED = "acked"
    NO_ACK = "no_ack"  # retries exhausted
    BROADCAST = "broadcast"  # no ACK expected


@dataclass
class TxAttempt:
    """Result record for one logical frame (including its retries)."""

    frame: Frame
    outcome: TxOutcome
    attempts: int
    completed_at: float
    rate_mbps: float


class MacTransmitter:
    """Sends frames with ACK-based retransmission over one radio.

    One logical frame is in flight at a time; submissions made while busy
    queue up in FIFO order.  Completion is reported through the per-send
    callback and recorded in :attr:`history`.
    """

    def __init__(
        self,
        radio: Radio,
        ack_engine: AckEngine,
        source_mac: MacAddress,
        rng: np.random.Generator,
        band: Band = Band.GHZ_2_4,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        use_dcf: bool = True,
    ) -> None:
        self.radio = radio
        self.source_mac = MacAddress(source_mac)
        self.band = band
        self.retry_limit = retry_limit
        self._current_retry_limit = retry_limit
        self.use_dcf = use_dcf
        self.engine: Engine = radio.medium.engine
        self._dcf = DcfTimer(self.engine, rng, band)
        self.history: List[TxAttempt] = []
        self._queue: List[tuple] = []
        self._busy = False
        self._current_frame: Optional[Frame] = None
        self._current_rate: float = 6.0
        self._current_callback: Optional[Callable[[TxAttempt], None]] = None
        self._attempts = 0
        self._timeout_event: Optional[Event] = None
        ack_engine.control_handler = self._on_control

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    def send(
        self,
        frame: Frame,
        rate_mbps: float = 6.0,
        on_complete: Optional[Callable[[TxAttempt], None]] = None,
        retry_limit: Optional[int] = None,
    ) -> None:
        """Queue ``frame`` for transmission at ``rate_mbps``.

        ``retry_limit`` overrides the transmitter default for this frame
        only (an AP's deauth bursts use a short limit, Figure 3 style).
        """
        self._queue.append((frame, rate_mbps, on_complete, retry_limit))
        if not self._busy:
            self._dequeue()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dequeue(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        frame, rate, callback, retry_limit = self._queue.pop(0)
        self._current_frame = frame
        self._current_rate = rate
        self._current_callback = callback
        self._current_retry_limit = (
            self.retry_limit if retry_limit is None else retry_limit
        )
        self._attempts = 0
        self._attempt()

    def _attempt(self) -> None:
        frame = self._current_frame
        assert frame is not None
        self._attempts += 1
        frame.retry = self._attempts > 1

        def transmit() -> None:
            self.radio.transmit(frame, self._current_rate)
            if not frame.needs_ack:
                self._complete(TxOutcome.BROADCAST)
                return
            airtime = frame_airtime(frame.wire_length(), self._current_rate)
            # The simulator delivers the ACK at the end of its airtime (a
            # real NIC detects its preamble earlier), so the wait covers
            # frame + SIFS + the whole ACK + timeout slack.
            response = ack_airtime(ack_rate_for(self._current_rate))
            wait = airtime + response + ack_timeout(self.band)
            self._timeout_event = self.engine.call_after(wait, self._on_timeout)

        if self.use_dcf:
            self._dcf.schedule(transmit, retry_count=self._attempts - 1)
        else:
            transmit()

    def _on_control(self, frame: Frame, reception: Reception) -> None:
        """ACK/CTS addressed to our MAC, delivered by the ACK engine."""
        if not frame.is_ack:
            return
        if frame.addr1 != self.source_mac:
            return
        if not self._busy or self._timeout_event is None:
            return
        self._timeout_event.cancel()
        self._timeout_event = None
        self._complete(TxOutcome.ACKED)

    def _on_timeout(self) -> None:
        self._timeout_event = None
        if self._attempts <= self._current_retry_limit:
            self._attempt()
        else:
            self._complete(TxOutcome.NO_ACK)

    def _complete(self, outcome: TxOutcome) -> None:
        frame = self._current_frame
        assert frame is not None
        attempt = TxAttempt(
            frame=frame,
            outcome=outcome,
            attempts=self._attempts,
            completed_at=self.engine.now,
            rate_mbps=self._current_rate,
        )
        self.history.append(attempt)
        callback = self._current_callback
        self._current_frame = None
        self._current_callback = None
        if callback is not None:
            callback(attempt)
        self._dequeue()
