"""802.11 frame model.

Every frame the reproduction exchanges is an instance of a :class:`Frame`
subclass.  The class hierarchy mirrors the standard's type/subtype split:

* management — beacon, probe request/response, authentication,
  association request/response, deauthentication;
* control — RTS, CTS, ACK (14/20-byte short formats, never encrypted —
  the reason the RTS/CTS variant of the attack is unpreventable even with
  a hypothetical fast validator, Section 2.2);
* data — data, null function (the paper's fake-frame payload of choice),
  and the QoS variants.

Frames know their receiver address, whether the standard requires them to
be acknowledged, their wire length, and how to describe themselves in a
capture trace with the same Info strings the paper's Wireshark figures
show ("Null function (No data)", "Acknowledgement, Flags=...",
"Deauthentication, SN=...").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.mac.addresses import BROADCAST, MacAddress


class FrameType(enum.IntEnum):
    MANAGEMENT = 0
    CONTROL = 1
    DATA = 2


# Management subtypes
SUBTYPE_ASSOC_REQUEST = 0
SUBTYPE_ASSOC_RESPONSE = 1
SUBTYPE_PROBE_REQUEST = 4
SUBTYPE_PROBE_RESPONSE = 5
SUBTYPE_BEACON = 8
SUBTYPE_DISASSOC = 10
SUBTYPE_AUTH = 11
SUBTYPE_DEAUTH = 12

# Control subtypes
SUBTYPE_RTS = 11
SUBTYPE_CTS = 12
SUBTYPE_ACK = 13

# Data subtypes
SUBTYPE_DATA = 0
SUBTYPE_NULL = 4
SUBTYPE_QOS_DATA = 8
SUBTYPE_QOS_NULL = 12

#: Header bytes: FC(2) + Duration(2) + 3 addresses(18) + SeqCtl(2).
LONG_HEADER_BYTES = 24
QOS_CONTROL_BYTES = 2
FCS_BYTES = 4


@dataclass
class Frame:
    """Common 802.11 frame state.

    ``addr1`` is always the receiver address (RA) — the only field the
    PHY checks before acknowledging.  ``addr2``/``addr3`` are absent on
    ACK/CTS frames (``None``).
    """

    ftype: FrameType = FrameType.DATA
    subtype: int = SUBTYPE_DATA
    addr1: MacAddress = field(default_factory=lambda: BROADCAST)
    addr2: Optional[MacAddress] = None
    addr3: Optional[MacAddress] = None
    duration_us: int = 0
    sequence: int = 0
    fragment: int = 0
    to_ds: bool = False
    from_ds: bool = False
    retry: bool = False
    power_management: bool = False
    more_data: bool = False
    protected: bool = False
    body: bytes = b""

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def receiver(self) -> MacAddress:
        """The RA — the only address the ACK engine matches on."""
        return self.addr1

    @property
    def transmitter(self) -> Optional[MacAddress]:
        return self.addr2

    def dest_u64(self) -> int:
        """The RA as a 48-bit big-endian integer (bit 40 = group bit).

        The medium's batched reception path classifies a whole arrival
        batch against receiver-MAC mirrors with one integer comparison;
        this hook is how a payload exposes its destination without any
        per-receiver parsing.
        """
        return int.from_bytes(self.addr1._value, "big")

    @property
    def is_management(self) -> bool:
        return self.ftype is FrameType.MANAGEMENT

    @property
    def is_control(self) -> bool:
        return self.ftype is FrameType.CONTROL

    @property
    def is_data(self) -> bool:
        return self.ftype is FrameType.DATA

    @property
    def is_rts(self) -> bool:
        return self.is_control and self.subtype == SUBTYPE_RTS

    @property
    def is_cts(self) -> bool:
        return self.is_control and self.subtype == SUBTYPE_CTS

    @property
    def is_ack(self) -> bool:
        return self.is_control and self.subtype == SUBTYPE_ACK

    @property
    def is_beacon(self) -> bool:
        return self.is_management and self.subtype == SUBTYPE_BEACON

    @property
    def is_deauth(self) -> bool:
        return self.is_management and self.subtype == SUBTYPE_DEAUTH

    @property
    def is_null_data(self) -> bool:
        return self.is_data and self.subtype in (SUBTYPE_NULL, SUBTYPE_QOS_NULL)

    @property
    def needs_ack(self) -> bool:
        """Does the standard require an ACK for this frame?

        Unicast data and management frames are acknowledged; control
        frames and group-addressed frames are not.  Nothing here depends
        on frame *legitimacy* — that is the Polite WiFi root cause.
        """
        if self.is_control:
            return False
        return self.addr1.is_unicast

    # ------------------------------------------------------------------
    # Wire-format hooks (serialization fills in the real bytes)
    # ------------------------------------------------------------------
    def header_length(self) -> int:
        if self.is_control:
            # RTS has two addresses, ACK/CTS one.
            return 16 if self.is_rts else 10
        if self.is_data and self.subtype in (SUBTYPE_QOS_DATA, SUBTYPE_QOS_NULL):
            return LONG_HEADER_BYTES + QOS_CONTROL_BYTES
        return LONG_HEADER_BYTES

    def body_length(self) -> int:
        """Length of the serialized frame body in bytes.

        Management subclasses override this because their bodies (fixed
        fields plus information elements) are generated at serialize time.
        """
        return len(self.body)

    def wire_length(self) -> int:
        """Total on-air PSDU length including FCS."""
        return self.header_length() + self.body_length() + FCS_BYTES

    # ------------------------------------------------------------------
    # Trace hooks consumed by the medium's capture buffer
    # ------------------------------------------------------------------
    def trace_source(self) -> str:
        return str(self.addr2) if self.addr2 is not None else "(none)"

    def trace_destination(self) -> str:
        return str(self.addr1)

    def trace_info(self) -> str:
        return f"{self.ftype.name} subtype {self.subtype}"


# ----------------------------------------------------------------------
# Control frames
# ----------------------------------------------------------------------
def AckFrame(ra: MacAddress) -> Frame:
    """An acknowledgement to ``ra`` — the frame Polite WiFi elicits."""
    return _TracedAck(
        ftype=FrameType.CONTROL, subtype=SUBTYPE_ACK, addr1=MacAddress(ra)
    )


def CtsFrame(ra: MacAddress, duration_us: int = 0) -> Frame:
    return _TracedCts(
        ftype=FrameType.CONTROL,
        subtype=SUBTYPE_CTS,
        addr1=MacAddress(ra),
        duration_us=duration_us,
    )


def RtsFrame(ra: MacAddress, ta: MacAddress, duration_us: int = 0) -> Frame:
    return _TracedRts(
        ftype=FrameType.CONTROL,
        subtype=SUBTYPE_RTS,
        addr1=MacAddress(ra),
        addr2=MacAddress(ta),
        duration_us=duration_us,
    )


@dataclass
class _TracedAck(Frame):
    def trace_info(self) -> str:
        return "Acknowledgement, Flags=........"


@dataclass
class _TracedCts(Frame):
    def trace_info(self) -> str:
        return "Clear-to-send, Flags=........"


@dataclass
class _TracedRts(Frame):
    def trace_info(self) -> str:
        return "Request-to-send, Flags=........"


# ----------------------------------------------------------------------
# Data frames
# ----------------------------------------------------------------------
@dataclass
class DataFrame(Frame):
    """A (possibly encrypted) data frame."""

    def __post_init__(self) -> None:
        self.ftype = FrameType.DATA
        if self.subtype not in (SUBTYPE_DATA, SUBTYPE_QOS_DATA):
            self.subtype = SUBTYPE_DATA

    def trace_info(self) -> str:
        kind = "QoS Data" if self.subtype == SUBTYPE_QOS_DATA else "Data"
        suffix = " [protected]" if self.protected else ""
        return f"{kind}, SN={self.sequence}{suffix}"


@dataclass
class NullDataFrame(Frame):
    """Null function (no data) — the paper's fake frame.

    The only *valid* field an attacker needs is ``addr1`` (the victim's
    MAC); ``addr2`` is spoofed and there is no payload or encryption.
    """

    def __post_init__(self) -> None:
        self.ftype = FrameType.DATA
        self.subtype = SUBTYPE_NULL
        self.body = b""

    def trace_info(self) -> str:
        return f"Null function (No data), SN={self.sequence}, FN={self.fragment}"


@dataclass
class QosNullFrame(Frame):
    """QoS null function frame (used interchangeably with the plain null)."""

    def __post_init__(self) -> None:
        self.ftype = FrameType.DATA
        self.subtype = SUBTYPE_QOS_NULL
        self.body = b""

    def trace_info(self) -> str:
        return f"QoS Null function (No data), SN={self.sequence}"


# ----------------------------------------------------------------------
# Management frames
# ----------------------------------------------------------------------
def _ssid_ies_length(ssid: str) -> int:
    """Bytes taken by the SSID IE plus the fixed supported-rates IE."""
    return (2 + len(ssid.encode("utf-8"))) + (2 + 3)



@dataclass
class BeaconFrame(Frame):
    """AP beacon advertising SSID and capabilities."""

    ssid: str = ""
    beacon_interval_tu: int = 100
    capabilities: int = 0x0431  # ESS | privacy | short preamble/slot

    def __post_init__(self) -> None:
        self.ftype = FrameType.MANAGEMENT
        self.subtype = SUBTYPE_BEACON
        if self.addr1 == BROADCAST and self.addr3 is None and self.addr2 is not None:
            self.addr3 = self.addr2

    def body_length(self) -> int:
        return 12 + _ssid_ies_length(self.ssid)

    def trace_info(self) -> str:
        return f"Beacon frame, SN={self.sequence}, SSID={self.ssid!r}"


@dataclass
class ProbeRequestFrame(Frame):
    """Active-scan probe (broadcast; SSID empty for wildcard)."""

    ssid: str = ""

    def __post_init__(self) -> None:
        self.ftype = FrameType.MANAGEMENT
        self.subtype = SUBTYPE_PROBE_REQUEST

    def body_length(self) -> int:
        return _ssid_ies_length(self.ssid)

    def trace_info(self) -> str:
        return f"Probe Request, SN={self.sequence}, SSID={self.ssid!r}"


@dataclass
class ProbeResponseFrame(Frame):
    ssid: str = ""
    beacon_interval_tu: int = 100
    capabilities: int = 0x0431

    def __post_init__(self) -> None:
        self.ftype = FrameType.MANAGEMENT
        self.subtype = SUBTYPE_PROBE_RESPONSE

    def body_length(self) -> int:
        return 12 + _ssid_ies_length(self.ssid)

    def trace_info(self) -> str:
        return f"Probe Response, SN={self.sequence}, SSID={self.ssid!r}"


@dataclass
class AuthFrame(Frame):
    """Open-system authentication step (algorithm 0)."""

    algorithm: int = 0
    auth_sequence: int = 1
    status: int = 0

    def __post_init__(self) -> None:
        self.ftype = FrameType.MANAGEMENT
        self.subtype = SUBTYPE_AUTH

    def body_length(self) -> int:
        return 6

    def trace_info(self) -> str:
        return f"Authentication, SN={self.sequence}, SEQ={self.auth_sequence}"


@dataclass
class AssocRequestFrame(Frame):
    ssid: str = ""
    capabilities: int = 0x0431
    listen_interval: int = 10

    def __post_init__(self) -> None:
        self.ftype = FrameType.MANAGEMENT
        self.subtype = SUBTYPE_ASSOC_REQUEST

    def body_length(self) -> int:
        return 4 + _ssid_ies_length(self.ssid)

    def trace_info(self) -> str:
        return f"Association Request, SN={self.sequence}, SSID={self.ssid!r}"


@dataclass
class AssocResponseFrame(Frame):
    capabilities: int = 0x0431
    status: int = 0
    association_id: int = 1

    def __post_init__(self) -> None:
        self.ftype = FrameType.MANAGEMENT
        self.subtype = SUBTYPE_ASSOC_RESPONSE

    def body_length(self) -> int:
        return 6

    def trace_info(self) -> str:
        return f"Association Response, SN={self.sequence}, status={self.status}"


@dataclass
class DeauthFrame(Frame):
    """Deauthentication — what confused APs hurl at the attacker (Fig. 3)."""

    reason: int = 7  # Class 3 frame received from nonassociated STA

    def __post_init__(self) -> None:
        self.ftype = FrameType.MANAGEMENT
        self.subtype = SUBTYPE_DEAUTH

    def body_length(self) -> int:
        return 2

    def trace_info(self) -> str:
        return f"Deauthentication, SN={self.sequence}"
