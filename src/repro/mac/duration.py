"""Duration/ID (NAV) computation.

The Duration field of a frame tells third-party receivers how long the
medium will stay busy after the frame ends, so they can defer (virtual
carrier sense).  For a simple data frame that is SIFS + ACK airtime; for
an RTS it covers the whole CTS + data + ACK exchange.  Correct durations
matter to the reproduction because the fake null frames the attacker
injects carry a plausible Duration, exactly like Scapy-crafted frames do,
and because the CTS the victim sends in the RTS/CTS variant derives its
duration from the attacker's RTS.
"""

from __future__ import annotations

import math

from repro.phy.constants import Band, sifs
from repro.phy.plcp import ack_airtime, cts_airtime, frame_airtime
from repro.phy.rates import ack_rate_for


def _to_duration_us(seconds: float) -> int:
    """Round a duration up to whole microseconds, clamped to the field max."""
    return min(int(math.ceil(seconds * 1e6)), 0x7FFF)


def data_frame_duration_us(rate_mbps: float, band: Band = Band.GHZ_2_4) -> int:
    """NAV for a unicast data/management frame: SIFS + the responding ACK."""
    response_rate = ack_rate_for(rate_mbps)
    return _to_duration_us(sifs(band) + ack_airtime(response_rate))


def rts_duration_us(
    data_length_bytes: int,
    data_rate_mbps: float,
    band: Band = Band.GHZ_2_4,
) -> int:
    """NAV carried by an RTS: 3×SIFS + CTS + pending data + ACK."""
    control_rate = ack_rate_for(data_rate_mbps)
    total = (
        3.0 * sifs(band)
        + cts_airtime(control_rate)
        + frame_airtime(data_length_bytes, data_rate_mbps)
        + ack_airtime(control_rate)
    )
    return _to_duration_us(total)


def cts_duration_us(rts_duration_field_us: int, rate_mbps: float, band: Band = Band.GHZ_2_4) -> int:
    """NAV carried by the responding CTS: the RTS NAV minus SIFS and CTS."""
    remaining = rts_duration_field_us * 1e-6 - sifs(band) - cts_airtime(rate_mbps)
    return max(_to_duration_us(max(remaining, 0.0)), 0)
