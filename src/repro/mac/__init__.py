"""802.11 MAC layer.

The package splits into the wire model (addresses, frame classes,
serialization, duration/NAV math), the **PHY-level ACK engine** — the
automaton whose standard-mandated behaviour *is* the Polite WiFi finding —
and the conventional upper-MAC machinery built on top of it: STA/AP state
machines, power save, and a retransmitting transmitter.
"""

from repro.mac.ack_engine import AckEngine, AckEngineConfig
from repro.mac.addresses import (
    ATTACKER_FAKE_MAC,
    BROADCAST,
    MacAddress,
    random_mac,
)
from repro.mac.frames import (
    AckFrame,
    AssocRequestFrame,
    AssocResponseFrame,
    AuthFrame,
    BeaconFrame,
    CtsFrame,
    DataFrame,
    DeauthFrame,
    Frame,
    FrameType,
    NullDataFrame,
    ProbeRequestFrame,
    ProbeResponseFrame,
    QosNullFrame,
    RtsFrame,
)
from repro.mac.serialization import deserialize, serialize
from repro.mac.timing import DcfTimer
from repro.mac.transmitter import MacTransmitter, TxAttempt, TxOutcome

__all__ = [
    "ATTACKER_FAKE_MAC",
    "AckEngine",
    "AckEngineConfig",
    "AckFrame",
    "AssocRequestFrame",
    "AssocResponseFrame",
    "AuthFrame",
    "BROADCAST",
    "BeaconFrame",
    "CtsFrame",
    "DataFrame",
    "DcfTimer",
    "DeauthFrame",
    "Frame",
    "FrameType",
    "MacAddress",
    "MacTransmitter",
    "NullDataFrame",
    "ProbeRequestFrame",
    "ProbeResponseFrame",
    "QosNullFrame",
    "RtsFrame",
    "TxAttempt",
    "TxOutcome",
    "deserialize",
    "random_mac",
    "serialize",
]
