"""802.11 wire format: frame objects ⇄ on-air bytes.

The attacker's injector (``repro.core.injector``) builds frames exactly the
way Scapy does in the paper — by emitting standards-conformant bytes with
arbitrary header fields — and the victim's receive chain parses those bytes
back.  Keeping a real serializer in the loop (rather than passing Python
objects around) means a fake frame is fake *only* in its field values, not
in its format: it passes the FCS check like any legitimate frame, which is
the precondition for the PHY to acknowledge it.

Layout implemented (IEEE 802.11-2016 §9):

* Frame Control (2 B): version/type/subtype + flag bits;
* Duration/ID (2 B, little-endian microseconds);
* 1–3 addresses depending on type; Sequence Control for long formats;
* type-specific body (management fixed fields + information elements);
* FCS (CRC-32, little-endian).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.mac.addresses import MacAddress
from repro.mac.frames import (
    FCS_BYTES,
    SUBTYPE_ACK,
    SUBTYPE_ASSOC_REQUEST,
    SUBTYPE_ASSOC_RESPONSE,
    SUBTYPE_AUTH,
    SUBTYPE_BEACON,
    SUBTYPE_CTS,
    SUBTYPE_DEAUTH,
    SUBTYPE_NULL,
    SUBTYPE_PROBE_REQUEST,
    SUBTYPE_PROBE_RESPONSE,
    SUBTYPE_QOS_DATA,
    SUBTYPE_QOS_NULL,
    SUBTYPE_RTS,
    AckFrame,
    AssocRequestFrame,
    AssocResponseFrame,
    AuthFrame,
    BeaconFrame,
    CtsFrame,
    DataFrame,
    DeauthFrame,
    Frame,
    FrameType,
    NullDataFrame,
    ProbeRequestFrame,
    ProbeResponseFrame,
    QosNullFrame,
    RtsFrame,
)
from repro.phy.crc import append_fcs, fcs_is_valid

# Frame Control flag bits (second FC byte).
_FLAG_TO_DS = 0x01
_FLAG_FROM_DS = 0x02
_FLAG_RETRY = 0x08
_FLAG_PWR_MGT = 0x10
_FLAG_MORE_DATA = 0x20
_FLAG_PROTECTED = 0x40

# Information element identifiers.
_IE_SSID = 0
_IE_SUPPORTED_RATES = 1

#: Basic OFDM rates advertised in beacons/probes (rate·2 | 0x80 basic flag).
_DEFAULT_RATES_IE = bytes([0x8C, 0x98, 0xB0])


class FrameFormatError(ValueError):
    """Raised when bytes cannot be parsed as an 802.11 frame."""


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _frame_control(frame: Frame) -> bytes:
    first = (int(frame.ftype) << 2) | (frame.subtype << 4)
    flags = 0
    if frame.to_ds:
        flags |= _FLAG_TO_DS
    if frame.from_ds:
        flags |= _FLAG_FROM_DS
    if frame.retry:
        flags |= _FLAG_RETRY
    if frame.power_management:
        flags |= _FLAG_PWR_MGT
    if frame.more_data:
        flags |= _FLAG_MORE_DATA
    if frame.protected:
        flags |= _FLAG_PROTECTED
    return bytes([first, flags])


def _sequence_control(frame: Frame) -> bytes:
    value = ((frame.sequence & 0x0FFF) << 4) | (frame.fragment & 0x0F)
    return struct.pack("<H", value)


def _encode_ie(element_id: int, payload: bytes) -> bytes:
    if len(payload) > 255:
        raise FrameFormatError(f"IE {element_id} payload too long: {len(payload)}")
    return bytes([element_id, len(payload)]) + payload


def _encode_ssid_ies(ssid: str) -> bytes:
    return _encode_ie(_IE_SSID, ssid.encode("utf-8")) + _encode_ie(
        _IE_SUPPORTED_RATES, _DEFAULT_RATES_IE
    )


def _parse_ies(data: bytes) -> List[Tuple[int, bytes]]:
    elements = []
    offset = 0
    while offset + 2 <= len(data):
        element_id, length = data[offset], data[offset + 1]
        offset += 2
        if offset + length > len(data):
            raise FrameFormatError("truncated information element")
        elements.append((element_id, data[offset : offset + length]))
        offset += length
    if offset != len(data):
        raise FrameFormatError("trailing bytes after information elements")
    return elements


def _find_ssid(elements: List[Tuple[int, bytes]]) -> str:
    for element_id, payload in elements:
        if element_id == _IE_SSID:
            return payload.decode("utf-8", errors="replace")
    return ""


def _management_body(frame: Frame) -> bytes:
    if isinstance(frame, (BeaconFrame, ProbeResponseFrame)):
        fixed = struct.pack(
            "<QHH", 0, frame.beacon_interval_tu, frame.capabilities
        )
        return fixed + _encode_ssid_ies(frame.ssid)
    if isinstance(frame, ProbeRequestFrame):
        return _encode_ssid_ies(frame.ssid)
    if isinstance(frame, AuthFrame):
        return struct.pack("<HHH", frame.algorithm, frame.auth_sequence, frame.status)
    if isinstance(frame, AssocRequestFrame):
        fixed = struct.pack("<HH", frame.capabilities, frame.listen_interval)
        return fixed + _encode_ssid_ies(frame.ssid)
    if isinstance(frame, AssocResponseFrame):
        return struct.pack(
            "<HHH", frame.capabilities, frame.status, frame.association_id
        )
    if isinstance(frame, DeauthFrame):
        return struct.pack("<H", frame.reason)
    return frame.body


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def serialize(frame: Frame) -> bytes:
    """Render ``frame`` as its on-air PSDU, FCS included."""
    fc = _frame_control(frame)
    duration = struct.pack("<H", frame.duration_us & 0xFFFF)
    if frame.is_control:
        if frame.is_rts:
            if frame.addr2 is None:
                raise FrameFormatError("RTS requires a transmitter address")
            header = fc + duration + frame.addr1.bytes + frame.addr2.bytes
        elif frame.is_cts or frame.is_ack:
            header = fc + duration + frame.addr1.bytes
        else:
            raise FrameFormatError(
                f"unsupported control subtype {frame.subtype}"
            )
        return append_fcs(header)

    addr2 = frame.addr2.bytes if frame.addr2 is not None else b"\x00" * 6
    addr3 = frame.addr3.bytes if frame.addr3 is not None else b"\x00" * 6
    header = fc + duration + frame.addr1.bytes + addr2 + addr3
    header += _sequence_control(frame)
    if frame.is_data and frame.subtype in (SUBTYPE_QOS_DATA, SUBTYPE_QOS_NULL):
        header += struct.pack("<H", 0)  # QoS Control (TID 0)
    body = _management_body(frame) if frame.is_management else frame.body
    return append_fcs(header + body)


# ----------------------------------------------------------------------
# Deserialization
# ----------------------------------------------------------------------
def deserialize(psdu: bytes, check_fcs: bool = True) -> Frame:
    """Parse an on-air PSDU back into a typed :class:`Frame`.

    ``check_fcs=False`` lets monitor-mode tools inspect corrupt captures.
    """
    if check_fcs and not fcs_is_valid(psdu):
        raise FrameFormatError("FCS check failed")
    data = psdu[:-FCS_BYTES]
    if len(data) < 10:
        raise FrameFormatError(f"frame too short: {len(data)} bytes")
    first, flags = data[0], data[1]
    if first & 0x03 != 0:
        raise FrameFormatError("unsupported 802.11 protocol version")
    ftype = FrameType((first >> 2) & 0x03)
    subtype = (first >> 4) & 0x0F
    duration = struct.unpack_from("<H", data, 2)[0]
    addr1 = MacAddress(data[4:10])

    if ftype is FrameType.CONTROL:
        frame = _parse_control(subtype, addr1, data)
    else:
        frame = _parse_long(ftype, subtype, addr1, data)

    frame.duration_us = duration
    frame.to_ds = bool(flags & _FLAG_TO_DS)
    frame.from_ds = bool(flags & _FLAG_FROM_DS)
    frame.retry = bool(flags & _FLAG_RETRY)
    frame.power_management = bool(flags & _FLAG_PWR_MGT)
    frame.more_data = bool(flags & _FLAG_MORE_DATA)
    frame.protected = bool(flags & _FLAG_PROTECTED)
    return frame


def _parse_control(subtype: int, addr1: MacAddress, data: bytes) -> Frame:
    if subtype == SUBTYPE_ACK:
        if len(data) != 10:
            raise FrameFormatError(f"bad ACK length {len(data)}")
        return AckFrame(addr1)
    if subtype == SUBTYPE_CTS:
        if len(data) != 10:
            raise FrameFormatError(f"bad CTS length {len(data)}")
        return CtsFrame(addr1)
    if subtype == SUBTYPE_RTS:
        if len(data) != 16:
            raise FrameFormatError(f"bad RTS length {len(data)}")
        return RtsFrame(addr1, MacAddress(data[10:16]))
    raise FrameFormatError(f"unsupported control subtype {subtype}")


def _zero_to_none(raw: bytes) -> Optional[MacAddress]:
    return None if raw == b"\x00" * 6 else MacAddress(raw)


def _parse_long(
    ftype: FrameType, subtype: int, addr1: MacAddress, data: bytes
) -> Frame:
    if len(data) < 24:
        raise FrameFormatError(f"frame too short for long header: {len(data)}")
    addr2 = _zero_to_none(data[10:16])
    addr3 = _zero_to_none(data[16:22])
    seq_control = struct.unpack_from("<H", data, 22)[0]
    fragment = seq_control & 0x0F
    sequence = (seq_control >> 4) & 0x0FFF
    offset = 24
    if ftype is FrameType.DATA and subtype in (SUBTYPE_QOS_DATA, SUBTYPE_QOS_NULL):
        offset += 2
    body = data[offset:]

    if ftype is FrameType.DATA:
        frame = _parse_data(subtype, addr1, addr2, addr3, body)
    else:
        frame = _parse_management(subtype, addr1, addr2, addr3, body)
    frame.sequence = sequence
    frame.fragment = fragment
    return frame


def _parse_data(
    subtype: int,
    addr1: MacAddress,
    addr2: Optional[MacAddress],
    addr3: Optional[MacAddress],
    body: bytes,
) -> Frame:
    common = dict(addr1=addr1, addr2=addr2, addr3=addr3)
    if subtype == SUBTYPE_NULL:
        return NullDataFrame(**common)
    if subtype == SUBTYPE_QOS_NULL:
        return QosNullFrame(**common)
    frame = DataFrame(subtype=subtype, body=body, **common)
    return frame


def _parse_management(
    subtype: int,
    addr1: MacAddress,
    addr2: Optional[MacAddress],
    addr3: Optional[MacAddress],
    body: bytes,
) -> Frame:
    common = dict(addr1=addr1, addr2=addr2, addr3=addr3)
    if subtype in (SUBTYPE_BEACON, SUBTYPE_PROBE_RESPONSE):
        if len(body) < 12:
            raise FrameFormatError("beacon/probe-response body too short")
        _, interval, capabilities = struct.unpack_from("<QHH", body, 0)
        ssid = _find_ssid(_parse_ies(body[12:]))
        cls = BeaconFrame if subtype == SUBTYPE_BEACON else ProbeResponseFrame
        return cls(
            ssid=ssid,
            beacon_interval_tu=interval,
            capabilities=capabilities,
            **common,
        )
    if subtype == SUBTYPE_PROBE_REQUEST:
        ssid = _find_ssid(_parse_ies(body))
        return ProbeRequestFrame(ssid=ssid, **common)
    if subtype == SUBTYPE_AUTH:
        if len(body) < 6:
            raise FrameFormatError("authentication body too short")
        algorithm, auth_seq, status = struct.unpack_from("<HHH", body, 0)
        return AuthFrame(
            algorithm=algorithm, auth_sequence=auth_seq, status=status, **common
        )
    if subtype == SUBTYPE_ASSOC_REQUEST:
        if len(body) < 4:
            raise FrameFormatError("association request body too short")
        capabilities, listen = struct.unpack_from("<HH", body, 0)
        ssid = _find_ssid(_parse_ies(body[4:]))
        return AssocRequestFrame(
            ssid=ssid, capabilities=capabilities, listen_interval=listen, **common
        )
    if subtype == SUBTYPE_ASSOC_RESPONSE:
        if len(body) < 6:
            raise FrameFormatError("association response body too short")
        capabilities, status, aid = struct.unpack_from("<HHH", body, 0)
        return AssocResponseFrame(
            capabilities=capabilities, status=status, association_id=aid, **common
        )
    if subtype == SUBTYPE_DEAUTH:
        if len(body) < 2:
            raise FrameFormatError("deauthentication body too short")
        (reason,) = struct.unpack_from("<H", body, 0)
        return DeauthFrame(reason=reason, **common)
    # Unrecognized management subtype: keep it generic but round-trippable.
    frame = Frame(ftype=FrameType.MANAGEMENT, subtype=subtype, body=body, **common)
    return frame
