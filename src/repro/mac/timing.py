"""DCF channel-access timing.

A deliberately lean distributed-coordination-function model: before each
transmission a device waits DIFS plus a uniform random backoff drawn from
the current contention window, doubling the window on retry.  The survey
and attack scenarios are sparse enough that full per-slot freeze/resume
CSMA bookkeeping would add cost without changing any result the paper
reports, so backoff is drawn once per attempt (documented simplification).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.phy.constants import Band, difs, slot_time
from repro.sim.engine import Engine, Event

#: Contention-window bounds (802.11 OFDM defaults).
CW_MIN = 15
CW_MAX = 1023


class DcfTimer:
    """Schedules transmissions after DIFS + random backoff."""

    def __init__(
        self,
        engine: Engine,
        rng: np.random.Generator,
        band: Band = Band.GHZ_2_4,
    ) -> None:
        self.engine = engine
        self.rng = rng
        self.band = band
        # Band timing constants are fixed per timer; resolving them per
        # backoff draw is measurable at wardrive transmission rates.
        self._difs = difs(band)
        self._slot = slot_time(band)

    def contention_window(self, retry_count: int) -> int:
        """CW for the given retry stage: (CW_MIN+1)·2^r − 1, capped."""
        window = (CW_MIN + 1) * (2 ** max(retry_count, 0)) - 1
        return min(window, CW_MAX)

    def backoff_delay(self, retry_count: int = 0) -> float:
        """One DIFS plus a uniformly-drawn number of slots."""
        slots = int(self.rng.integers(0, self.contention_window(retry_count) + 1))
        return self._difs + slots * self._slot

    def schedule(
        self,
        callback: Callable[[], None],
        retry_count: int = 0,
        extra_delay: float = 0.0,
    ) -> Event:
        """Run ``callback`` after access timing (plus ``extra_delay``)."""
        return self.engine.call_after(
            extra_delay + self.backoff_delay(retry_count), callback
        )
