"""LLC/SNAP encapsulation for data-frame payloads.

802.11 data frames carry an LLC/SNAP header identifying the payload
protocol; the only protocol our control plane needs is EAPOL (EtherType
0x888E), which transports the 4-way handshake messages.  Everything else
is opaque application payload wrapped as generic IPv4-ish traffic for the
keepalive/traffic generators.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: LLC SNAP header: DSAP=SSAP=0xAA, control 0x03, OUI 00:00:00.
_SNAP_PREFIX = b"\xaa\xaa\x03\x00\x00\x00"

ETHERTYPE_EAPOL = 0x888E
ETHERTYPE_IPV4 = 0x0800


def wrap(ethertype: int, payload: bytes) -> bytes:
    """Prefix ``payload`` with the LLC/SNAP header for ``ethertype``."""
    return _SNAP_PREFIX + ethertype.to_bytes(2, "big") + payload


def unwrap(body: bytes) -> Optional[Tuple[int, bytes]]:
    """Parse an LLC/SNAP body; returns ``(ethertype, payload)`` or ``None``."""
    if len(body) < 8 or not body.startswith(_SNAP_PREFIX):
        return None
    ethertype = int.from_bytes(body[6:8], "big")
    return ethertype, body[8:]


def wrap_eapol(payload: bytes) -> bytes:
    return wrap(ETHERTYPE_EAPOL, payload)


def is_eapol(body: bytes) -> bool:
    parsed = unwrap(body)
    return parsed is not None and parsed[0] == ETHERTYPE_EAPOL


def eapol_payload(body: bytes) -> bytes:
    parsed = unwrap(body)
    if parsed is None or parsed[0] != ETHERTYPE_EAPOL:
        raise ValueError("body is not an EAPOL frame")
    return parsed[1]
