"""MAC addresses and OUI handling.

The survey identifies vendors from the 24-bit OUI prefix of discovered MAC
addresses (that is how Table 2's vendor census was assembled), and the
attacker spoofs the unassigned source address ``aa:bb:bb:bb:bb:bb`` used
throughout the paper's captures.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np


class MacAddress:
    """An immutable 48-bit MAC address.

    Accepts ``"aa:bb:cc:dd:ee:ff"`` strings, 6-byte ``bytes``, or another
    :class:`MacAddress`.  Hashable, comparable, and cheap enough to use as
    a dict key throughout the simulator.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, bytes, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise ValueError(f"MAC must be 6 bytes, got {len(value)}")
            self._value = bytes(value)
        elif isinstance(value, str):
            parts = value.replace("-", ":").split(":")
            if len(parts) != 6:
                raise ValueError(f"malformed MAC string {value!r}")
            try:
                self._value = bytes(int(part, 16) for part in parts)
            except ValueError:
                raise ValueError(f"malformed MAC string {value!r}") from None
        else:
            raise TypeError(f"cannot build MacAddress from {type(value).__name__}")

    # ------------------------------------------------------------------
    # Representation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return ":".join(f"{byte:02x}" for byte in self._value)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        if isinstance(other, (str, bytes)):
            try:
                return self._value == MacAddress(other)._value
            except (ValueError, TypeError):
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __lt__(self, other: "MacAddress") -> bool:
        return self._value < other._value

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def bytes(self) -> bytes:
        return self._value

    @property
    def oui(self) -> bytes:
        """The 24-bit organizationally unique identifier."""
        return self._value[:3]

    @property
    def oui_str(self) -> str:
        return ":".join(f"{byte:02x}" for byte in self._value[:3])

    @property
    def is_broadcast(self) -> bool:
        return self._value == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        """Group bit set (includes broadcast); group frames are never ACKed."""
        return bool(self._value[0] & 0x01)

    @property
    def is_unicast(self) -> bool:
        return not self.is_multicast

    @property
    def is_locally_administered(self) -> bool:
        return bool(self._value[0] & 0x02)


#: The all-ones broadcast address.
BROADCAST = MacAddress("ff:ff:ff:ff:ff:ff")

#: The spoofed attacker source address used in the paper's captures
#: (Figures 2 and 3).
ATTACKER_FAKE_MAC = MacAddress("aa:bb:bb:bb:bb:bb")


def random_mac(
    rng: np.random.Generator,
    oui: Optional[Union[bytes, str]] = None,
) -> MacAddress:
    """A random unicast MAC, optionally under a fixed vendor OUI.

    Without an OUI the result is flagged locally administered, like the
    randomized addresses modern clients probe with.
    """
    if oui is None:
        head = bytes([(int(rng.integers(0, 256)) & 0xFC) | 0x02])
        tail = bytes(int(b) for b in rng.integers(0, 256, size=5))
        return MacAddress(head + tail)
    if isinstance(oui, str):
        oui = MacAddress(oui + ":00:00:00").oui
    if len(oui) != 3:
        raise ValueError(f"OUI must be 3 bytes, got {len(oui)}")
    if oui[0] & 0x01:
        raise ValueError("OUI has the group bit set; cannot assign to a device")
    tail = bytes(int(b) for b in rng.integers(0, 256, size=3))
    return MacAddress(bytes(oui) + tail)


def unique_macs(
    rng: np.random.Generator,
    count: int,
    oui: Optional[Union[bytes, str]] = None,
) -> Iterable[MacAddress]:
    """``count`` distinct random MACs (rejection-sampled for uniqueness)."""
    seen = set()
    produced = 0
    while produced < count:
        mac = random_mac(rng, oui)
        if mac in seen:
            continue
        seen.add(mac)
        produced += 1
        yield mac
