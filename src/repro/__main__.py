"""Command-line runner: ``python -m repro [demo|run ...|campaign ...]``.

Gives a new user one command per headline result:

* ``probe``      — the Figure 2 fake-frame → ACK exchange (default);
* ``deauth``     — Figure 3: the AP barks and ACKs anyway;
* ``battery``    — a quick Figure 6 power sweep;
* ``locate``     — ACK-timing localization of a victim device;
* ``survey``     — a small wardriving survey (Table 2 shape);

plus the scenario runner (any registered scenario, see
``docs/scenarios.md``)::

    python -m repro run wardrive --seed 7 --param population_scale=0.05
    python -m repro run --list

and the campaign orchestrator (see ``docs/telemetry.md``)::

    python -m repro campaign --scenario wardrive --seeds 8 --workers 4 \
        --out manifest.json

which shards across machines and merges the results::

    python -m repro campaign --scenario wardrive --seeds 8 --shard 1/2 \
        --out manifest.json        # on box 1 (writes manifest.shard1of2.json)
    python -m repro campaign --scenario wardrive --seeds 8 --shard 2/2 \
        --out manifest.json        # on box 2
    python -m repro campaign merge manifest.shard*.json --out manifest.json

and the control plane (see ``docs/control-plane.md``), which runs the
whole sharded fleet — spawn, monitor, restart dead shards, merge —
from one command::

    python -m repro campaign drive --scenario wardrive --seeds 8 \
        --shards 4 --out-dir sweep/
    python -m repro campaign status sweep/
    python -m repro campaign compare sweep/manifest.json other.json
    python -m repro serve --root campaign-jobs

The full, narrated versions live in ``examples/``; the full-scale
reproductions in ``benchmarks/``.

The demos are themselves registered scenarios — each demo command is
just ``run <scenario>`` with the demo's historical seed and parameters.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.scenario import available_scenarios, run_scenario


def _demo_probe() -> int:
    result = run_scenario("probe")
    return 0 if result.outputs["responded"] else 1


def _demo_deauth() -> int:
    run_scenario("deauth")
    return 0


def _demo_battery() -> int:
    run_scenario(
        "battery",
        params={"rates_pps": (0, 10, 50, 200, 900), "duration_s": 5.0},
    )
    return 0


def _demo_locate() -> int:
    run_scenario("locate")
    return 0


def _demo_survey() -> int:
    run_scenario(
        "wardrive",
        params={
            "population_scale": 0.05,
            "keep_all_vendors": False,
            "blocks_x": 4,
            "blocks_y": 3,
            "beacon_interval": 0.35,
            "vehicle_speed_mps": 11.0,
        },
    )
    return 0


_DEMOS = {
    "probe": _demo_probe,
    "deauth": _demo_deauth,
    "battery": _demo_battery,
    "locate": _demo_locate,
    "survey": _demo_survey,
}


def _parse_seeds(text: str):
    """``"8"`` means seeds 0..7; ``"3,5,9"`` means exactly those seeds."""
    try:
        if "," in text:
            return [int(part) for part in text.split(",") if part.strip()]
        count = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a seed count or comma-separated seeds, got {text!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError("need at least one seed")
    return list(range(count))


def _parse_param(text: str):
    """``key=value`` with the value coerced to int/float when it parses."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            continue
    return key, raw


def _parse_grid(text: str):
    """``key=v1,v2,v3`` -> (key, [values]), each value coerced like
    ``--param`` (int, then float, then string)."""
    key, sep, raw = text.partition("=")
    values = [part for part in raw.split(",") if part.strip()]
    if not sep or not key or not values:
        raise argparse.ArgumentTypeError(
            f"expected KEY=V1,V2,... got {text!r}"
        )
    return key, [_parse_param(f"{key}={value}")[1] for value in values]


def _parse_shard(text: str):
    """``i/N`` (1-based, as printed by the docs) -> (0-based index, count)."""
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected i/N (e.g. 1/4), got {text!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise argparse.ArgumentTypeError(
            f"shard index must be in 1..{count}, got {text!r}"
        )
    return index - 1, count


def _run_one(argv) -> int:
    """``python -m repro run <scenario>`` — launch any registered scenario."""
    from repro.scenario import REGISTRY

    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run one registered scenario, narrated",
    )
    parser.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's default seed",
    )
    parser.add_argument(
        "--param", action="append", type=_parse_param, default=[],
        metavar="KEY=VALUE", help="scenario parameter (repeatable)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the outputs dict as JSON (narration still precedes it)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress scenario narration"
    )
    args = parser.parse_args(argv)
    if args.list:
        for entry in REGISTRY.describe():
            print(f"{entry['name']:<12} {entry['description']}")
        return 0
    if args.scenario is None:
        parser.error("a scenario name is required (or --list)")
    if args.scenario not in available_scenarios():
        parser.error(
            f"unknown scenario {args.scenario!r}; "
            f"registered: {', '.join(available_scenarios())}"
        )
    from repro.scenario import ParameterValueError, UnknownParameterError

    try:
        result = run_scenario(
            args.scenario,
            seed=args.seed,
            params=dict(args.param),
            quiet=args.quiet,
        )
    except (ParameterValueError, UnknownParameterError) as exc:
        parser.error(str(exc))
    if args.json:
        print(json.dumps(result.outputs, sort_keys=True, default=str))
    else:
        print()
        for key, value in sorted(result.outputs.items()):
            print(f"  {key:<20} {value}")
    return 0


def _merge_campaign(argv) -> int:
    """``python -m repro campaign merge`` — combine shard manifests."""
    from repro.telemetry import (
        MissingShardsError,
        ShardMismatchError,
        merge_manifest_files,
        summarize_manifest,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign merge",
        description="Merge shard manifests into one campaign manifest "
        "(aggregate byte-identical to the unsharded run)",
    )
    parser.add_argument(
        "manifests", nargs="+", metavar="SHARD_MANIFEST",
        help="shard manifest files written by `campaign --shard i/N --out ...`",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the merged JSON manifest here",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="aggregate even if shards are missing; the merged manifest "
        "reports the gap (shards.missing, complete: false) instead of "
        "this command failing",
    )
    args = parser.parse_args(argv)
    try:
        merged = merge_manifest_files(
            args.manifests, output_path=args.out,
            allow_missing=args.allow_missing,
        )
    except (MissingShardsError, ShardMismatchError, ValueError) as exc:
        parser.error(str(exc))
    print(summarize_manifest(merged))
    if args.out:
        print(f"\n[merged manifest written to {args.out}]")
    return 0 if merged["complete"] and not merged["failed_runs"] else 1


def _drive_campaign(argv) -> int:
    """``python -m repro campaign drive`` — run a whole sharded fleet."""
    from repro.control import DriverConfig, DriverError, drive_campaign
    from repro.telemetry import summarize_manifest

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign drive",
        description="Spawn, monitor, and merge an N-shard campaign: dead "
        "shards (crash or heartbeat silence) are relaunched on their "
        "slice with --resume, and the shard manifests are auto-merged "
        "into OUT_DIR/manifest.json (byte-identical aggregate to an "
        "unsharded run)",
    )
    parser.add_argument(
        "--scenario", required=True, help="registered scenario to run"
    )
    parser.add_argument(
        "--out-dir", required=True, metavar="DIR",
        help="campaign directory: spec, shard manifests + sidecars, "
        "driver.json, and the merged manifest.json land here",
    )
    parser.add_argument(
        "--seeds", type=_parse_seeds, default=[0],
        help="seed count (N -> seeds 0..N-1) or explicit comma list",
    )
    parser.add_argument(
        "--param", action="append", type=_parse_param, default=[],
        metavar="KEY=VALUE", help="scenario parameter (repeatable)",
    )
    parser.add_argument(
        "--grid", action="append", type=_parse_grid, default=[],
        metavar="KEY=V1,V2", help="sweep a parameter (repeatable)",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="shard subprocesses to split the plan across (default: 2)",
    )
    parser.add_argument(
        "--workers-per-shard", type=int, default=1,
        help="pool workers inside each shard (default: 1)",
    )
    parser.add_argument("--name", default="", help="campaign name")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt budget for one run (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="per-run retry budget inside each shard (default: 0)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "record"), default="raise",
        help="shard behaviour after a run exhausts its retries",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=0.5, metavar="SECONDS",
        help="shard sidecar heartbeat interval (default: 0.5)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
        help="declare a shard dead after this much sidecar silence and "
        "reassign its slice (default: 30)",
    )
    parser.add_argument(
        "--slice-retries", type=int, default=1, metavar="N",
        help="relaunches allowed per shard before the drive fails "
        "(default: 1)",
    )
    parser.add_argument(
        "--scenario-module", action="append", default=[], metavar="MODULE",
        help="extra module shard subprocesses import for scenario "
        "registration (repeatable; sets REPRO_SCENARIO_MODULES)",
    )
    parser.add_argument(
        "--chaos-kill-shard", type=int, default=None, metavar="I",
        help="fault injection: SIGKILL 0-based shard I after its first "
        "run, to exercise slice reassignment (used by `make "
        "control-smoke`)",
    )
    parser.add_argument(
        "--chaos-stop-shard", type=int, default=None, metavar="I",
        help="fault injection: SIGSTOP (hang) 0-based shard I after its "
        "first run",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-event narration"
    )
    args = parser.parse_args(argv)

    def narrate(event):
        if args.quiet:
            return
        shard = event.get("shard")
        label = f"shard {shard + 1}/{args.shards}" if shard is not None else "fleet"
        detail = {
            "spawn": lambda: f"spawned (pid {event['pid']}, attempt {event['attempt']})",
            "done": lambda: f"finished its slice ({event['runs']} new run(s))",
            "dead": lambda: f"declared dead: {event['reason']}",
            "reassign": lambda: f"slice reassigned (attempt {event['attempt']})",
            "chaos-kill": lambda: "chaos: SIGKILL",
            "chaos-stop": lambda: "chaos: SIGSTOP",
            "merged": lambda: f"merged {event['runs']} run(s) -> {event['manifest']}",
        }.get(event["kind"], lambda: json.dumps(event, sort_keys=True))
        print(f"[drive] {label}: {detail()}")

    config = DriverConfig(
        scenario=args.scenario,
        out_dir=args.out_dir,
        seeds=args.seeds,
        params=dict(args.param),
        grid=dict(args.grid) if args.grid else None,
        name=args.name,
        run_timeout_s=args.timeout,
        retries=args.retries,
        on_error=args.on_error,
        heartbeat_s=args.heartbeat,
        shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        heartbeat_timeout_s=args.heartbeat_timeout,
        slice_retries=args.slice_retries,
        scenario_modules=args.scenario_module,
        chaos_kill_shard=args.chaos_kill_shard,
        chaos_stop_shard=args.chaos_stop_shard,
    )
    try:
        config.validate()
    except ValueError as exc:
        parser.error(str(exc))
    try:
        result = drive_campaign(config, on_event=narrate)
    except DriverError as exc:
        print(f"drive failed: {exc}", file=sys.stderr)
        print(
            "[completed runs are preserved in the shard sidecars; re-run "
            "the same drive to resume]",
            file=sys.stderr,
        )
        return 1
    manifest = result["manifest"]
    if result["reassignments"]:
        print(f"[{result['reassignments']} slice reassignment(s) during the drive]")
    print(summarize_manifest(manifest))
    print(f"\n[merged manifest written to {result['manifest_path']}]")
    return 0 if manifest["complete"] and not manifest["failed_runs"] else 1


def _campaign_status(argv) -> int:
    """``python -m repro campaign status <dir>`` — fleet view from disk."""
    from repro.control import fleet_status, render_fleet_status
    from repro.telemetry import status_to_json

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign status",
        description="Reconstruct fleet status for a campaign directory "
        "from its sidecars (plus campaign.json/driver.json when "
        "present); works against running, finished, and crashed fleets",
    )
    parser.add_argument("dir", help="campaign directory (the drive's --out-dir)")
    parser.add_argument(
        "--json", action="store_true", help="print the snapshot as JSON"
    )
    parser.add_argument(
        "--stall-after", type=float, default=None, metavar="SECONDS",
        help="report a shard as stalled after this much silence "
        "(default: 4 heartbeat intervals, or 30s without a spec)",
    )
    args = parser.parse_args(argv)
    try:
        status = fleet_status(args.dir, stall_after_s=args.stall_after)
    except ValueError as exc:
        parser.error(str(exc))
    if args.json:
        print(status_to_json(status), end="")
    else:
        print(render_fleet_status(status))
    return 1 if status["state"] == "failed" else 0


def _compare_campaign(argv) -> int:
    """``python -m repro campaign compare A B`` — diff two manifests."""
    from repro.telemetry import (
        compare_manifest_files,
        format_comparison,
        status_to_json,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign compare",
        description="Compare two campaign manifests: identity (scenario, "
        "seeds, params, grid), aggregate, and per-run outputs must all "
        "match for exit 0; host fields (git rev, durations, workers) "
        "are reported but never fail the compare",
    )
    parser.add_argument("manifest_a", metavar="A", help="baseline manifest")
    parser.add_argument("manifest_b", metavar="B", help="candidate manifest")
    parser.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    args = parser.parse_args(argv)
    try:
        report = compare_manifest_files(args.manifest_a, args.manifest_b)
    except ValueError as exc:
        parser.error(str(exc))
    if args.json:
        print(status_to_json(report), end="")
    else:
        print(format_comparison(report))
    return 0 if report["match"] else 1


def _build_campaign_config(parser, args, shard_index, shard_count):
    """The CampaignConfig for ``python -m repro campaign``, from flags or
    from ``--spec-file`` (which owns the campaign definition; flags then
    only carry per-invocation knobs and run-policy overrides)."""
    from repro.telemetry import CampaignConfig

    overrides = {
        "workers": args.workers,
        "output_path": args.out,
        "resume": args.resume,
        "shard_index": shard_index,
        "shard_count": shard_count,
    }
    if args.spec_file is not None:
        for flag, value in (
            ("--scenario", args.scenario),
            ("--seeds", args.seeds),
            ("--param", args.param),
            ("--grid", args.grid),
        ):
            if value:
                parser.error(
                    f"{flag} conflicts with --spec-file; the spec defines "
                    f"the campaign"
                )
        try:
            spec = json.loads(
                pathlib.Path(args.spec_file).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read campaign spec {args.spec_file}: {exc}")
        if not isinstance(spec, dict):
            parser.error(f"campaign spec {args.spec_file} is not a JSON object")
        if args.name:
            overrides["name"] = args.name
        # Run-policy flags, when given, override the spec's policy.
        if args.timeout is not None:
            overrides["run_timeout_s"] = args.timeout
        if args.retries is not None:
            overrides["retries"] = args.retries
        if args.retry_backoff is not None:
            overrides["retry_backoff_s"] = args.retry_backoff
        if args.on_error is not None:
            overrides["on_error"] = args.on_error
        if args.heartbeat is not None:
            overrides["heartbeat_s"] = args.heartbeat if args.heartbeat > 0 else None
        return CampaignConfig.from_spec_dict(spec, **overrides)
    heartbeat = 30.0 if args.heartbeat is None else args.heartbeat
    return CampaignConfig(
        scenario=args.scenario or "wardrive",
        seeds=args.seeds if args.seeds is not None else [0],
        params=dict(args.param),
        grid=dict(args.grid) if args.grid else None,
        name=args.name,
        run_timeout_s=args.timeout,
        retries=args.retries or 0,
        retry_backoff_s=args.retry_backoff or 0.0,
        on_error=args.on_error or "raise",
        heartbeat_s=heartbeat if heartbeat > 0 else None,
        **overrides,
    )


def _run_campaign(argv) -> int:
    if argv and argv[0] == "merge":
        return _merge_campaign(argv[1:])
    if argv and argv[0] == "drive":
        return _drive_campaign(argv[1:])
    if argv and argv[0] == "status":
        return _campaign_status(argv[1:])
    if argv and argv[0] == "compare":
        return _compare_campaign(argv[1:])
    from repro.telemetry import (
        CampaignConfig,
        CampaignRunError,
        run_campaign,
        shard_manifest_path,
        summarize_manifest,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Fan a scenario out across seeds and aggregate metrics "
        "(subcommands: merge shard manifests, drive a whole sharded "
        "fleet, status a campaign directory, compare two manifests)",
    )
    parser.add_argument(
        "--scenario", default=None, choices=available_scenarios(),
        help="registered scenario to run (default: wardrive)",
    )
    parser.add_argument(
        "--spec-file", default=None, metavar="PATH",
        help="read the campaign definition (scenario, seeds, params, "
        "grid, run policy) from this JSON spec instead of flags; the "
        "control-plane driver hands every shard the same spec so "
        "values cross the process boundary typed, not re-parsed",
    )
    parser.add_argument(
        "--seeds", type=_parse_seeds, default=None,
        help="seed count (N -> seeds 0..N-1) or explicit comma list",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default: 1 = run inline)",
    )
    parser.add_argument(
        "--param", action="append", type=_parse_param, default=[],
        metavar="KEY=VALUE", help="scenario parameter (repeatable)",
    )
    parser.add_argument(
        "--grid", action="append", type=_parse_grid, default=[],
        metavar="KEY=V1,V2", help="sweep a parameter over these values "
        "(repeatable; the campaign runs the cross product per seed)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON run manifest here (per-run records stream "
        "to PATH.runs.jsonl as runs complete); with --shard i/N the "
        "manifest lands at PATH's shard sibling (out.shardIofN.json)",
    )
    parser.add_argument("--name", default="", help="campaign name for the manifest")
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse (seed, params) runs already recorded in the JSONL "
        "sidecar (or manifest) at --out instead of re-executing them "
        "(per shard when --shard is given)",
    )
    parser.add_argument(
        "--shard", type=_parse_shard, default=None, metavar="I/N",
        help="run only shard I of an N-way deterministic split of the "
        "run plan (1-based; run the other shards elsewhere, then "
        "`campaign merge`)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget for one run (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for a run that raises or times out "
        "(default: 0)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=None, metavar="SECONDS",
        help="sleep SECONDS * attempt between retries (default: 0)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "record"), default=None,
        help="after retries are exhausted: abort the campaign ('raise', "
        "default) or record the failed run in the manifest ('record')",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="interval between liveness records in the sidecar "
        "(default: 30; 0 disables)",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.out:
        parser.error("--resume requires --out (the manifest to resume from)")
    shard_index, shard_count = args.shard if args.shard else (None, 1)
    try:
        config = _build_campaign_config(parser, args, shard_index, shard_count)
        config.validate()  # surface config errors as usage errors
    except ValueError as exc:
        parser.error(str(exc))
    try:
        manifest = run_campaign(config)
    except CampaignRunError as exc:
        print(f"campaign aborted: {exc}", file=sys.stderr)
        if args.out:
            print(
                "[completed runs are preserved in the sidecar; re-run with "
                "--resume to continue]",
                file=sys.stderr,
            )
        return 1
    except ValueError as exc:
        parser.error(str(exc))
    out_path = args.out
    if out_path and shard_index is not None:
        out_path = shard_manifest_path(out_path, shard_index, shard_count)
    if manifest.get("resumed_runs"):
        print(f"[resumed: {manifest['resumed_runs']} run(s) reused from {out_path}]")
    print(summarize_manifest(manifest))
    if out_path:
        print(f"\n[manifest written to {out_path}]")
    return 0 if not manifest["failed_runs"] else 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        return _run_campaign(argv[1:])
    if argv and argv[0] == "run":
        return _run_one(argv[1:])
    if argv and argv[0] == "serve":
        from repro.control.service import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Polite WiFi reproduction demos and scenario/campaign runner",
    )
    parser.add_argument(
        "demo", nargs="?", default="probe",
        choices=sorted(_DEMOS) + ["run", "campaign", "serve"],
        help="which demo to run (default: probe), 'run <scenario>' for "
        "any registered scenario, 'campaign ...' for the parallel "
        "campaign orchestrator, or 'serve' for the HTTP control "
        "service",
    )
    args = parser.parse_args(argv)
    return _DEMOS[args.demo]()


if __name__ == "__main__":
    sys.exit(main())
