"""Command-line demo runner: ``python -m repro [demo]``.

Gives a new user one command per headline result:

* ``probe``      — the Figure 2 fake-frame → ACK exchange (default);
* ``deauth``     — Figure 3: the AP barks and ACKs anyway;
* ``battery``    — a quick Figure 6 power sweep;
* ``locate``     — ACK-timing localization of a victim device;
* ``survey``     — a small wardriving survey (Table 2 shape).

The full, narrated versions live in ``examples/``; the full-scale
reproductions in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    ATTACKER_FAKE_MAC,
    Engine,
    FrameTrace,
    MacAddress,
    Medium,
    MonitorDongle,
    PoliteWiFiProbe,
    Position,
    Station,
)


def _demo_probe() -> int:
    engine = Engine()
    trace = FrameTrace()
    medium = Medium(engine, trace=trace)
    rng = np.random.default_rng(0)
    victim = Station(
        mac=MacAddress("f2:6e:0b:11:22:33"),
        medium=medium, position=Position(0, 0), rng=rng,
    )
    attacker = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:01"),
        medium=medium, position=Position(5, 0), rng=rng,
    )
    result = PoliteWiFiProbe(attacker).probe(victim.mac)
    print(trace.to_table())
    print(
        f"\nPolite WiFi: responded={result.responded}, "
        f"ACK after {result.ack_latency_s * 1e6:.0f} us"
    )
    return 0 if result.responded else 1


def _demo_deauth() -> int:
    from repro.core.injector import FakeFrameInjector
    from repro.devices.access_point import AccessPoint, ApBehavior

    engine = Engine()
    trace = FrameTrace()
    medium = Medium(engine, trace=trace)
    rng = np.random.default_rng(1)
    ap = AccessPoint(
        mac=MacAddress("0c:00:1e:00:00:01"), medium=medium,
        position=Position(0, 0, 2), rng=rng,
        behavior=ApBehavior(deauth_on_unknown=True),
    )
    attacker = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:01"),
        medium=medium, position=Position(8, 0), rng=rng,
    )
    FakeFrameInjector(attacker).inject_null(ap.mac)
    engine.run_until(1.0)
    print(trace.to_table())
    print(
        f"\ndeauth frames: {trace.count_info('Deauthentication')}, "
        f"ACKs to the fake frame: {trace.count_info('Acknowledgement')}"
    )
    return 0


def _demo_battery() -> int:
    from repro.core.battery import BatteryDrainAttack
    from repro.devices.access_point import AccessPoint
    from repro.devices.esp import Esp8266Device

    engine = Engine()
    medium = Medium(engine)
    rng = np.random.default_rng(42)
    ap = AccessPoint(
        mac=MacAddress("0c:00:1e:00:00:02"), medium=medium,
        position=Position(0, 0, 2), rng=rng,
        ssid="IoTNet", passphrase="iot network key",
    )
    victim = Esp8266Device(
        mac=MacAddress("02:e8:26:60:00:01"), medium=medium,
        position=Position(5, 0, 1), rng=rng,
    )
    victim.connect(ap.mac, "IoTNet", "iot network key")
    engine.run_until(1.0)
    victim.enter_power_save()
    attacker = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:02"), medium=medium,
        position=Position(12, 0, 1), rng=rng,
    )
    attack = BatteryDrainAttack(attacker, victim)
    print("rate (pkt/s)  power (mW)")
    for rate in (0, 10, 50, 200, 900):
        point = attack.measure_power(float(rate), duration_s=5.0)
        print(f"{rate:>11}  {point.average_power_mw:>9.1f}")
    return 0


def _demo_locate() -> int:
    from repro.core.localization import AckRangingSensor, LocalizationAttack

    engine = Engine()
    medium = Medium(engine)
    rng = np.random.default_rng(7)
    truth = Position(18.0, 12.0, 1.0)
    victim = Station(
        mac=MacAddress("f2:6e:0b:11:22:33"),
        medium=medium, position=truth, rng=rng,
    )
    dongle = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:03"),
        medium=medium, position=Position(0, 0, 1), rng=rng,
    )
    attack = LocalizationAttack(AckRangingSensor(dongle))
    result = attack.locate(
        victim.mac,
        anchor_positions=[
            Position(0, 0, 1), Position(40, 0, 1),
            Position(0, 40, 1), Position(40, 40, 1),
        ],
        probes_per_anchor=60,
        truth=truth,
    )
    for m in result.measurements:
        print(
            f"anchor ({m.anchor.x:4.0f},{m.anchor.y:4.0f})  "
            f"range {m.distance_m:6.2f} m  (+/-{m.standard_error_m:.2f})"
        )
    print(
        f"\nvictim at ({truth.x:.1f}, {truth.y:.1f}); "
        f"estimated ({result.estimated.x:.1f}, {result.estimated.y:.1f}); "
        f"error {result.error_m:.2f} m"
    )
    return 0


def _demo_survey() -> int:
    from repro.core.wardrive import WardriveConfig, WardrivePipeline
    from repro.survey.city import CityConfig, SyntheticCity

    engine = Engine()
    medium = Medium(engine)
    city = SyntheticCity(
        engine, medium,
        CityConfig(
            population_scale=0.05, keep_all_vendors=False,
            blocks_x=4, blocks_y=3,
        ),
    )
    pipeline = WardrivePipeline(city, WardriveConfig())
    results = pipeline.run()
    print(results.to_table(top=10))
    return 0


_DEMOS = {
    "probe": _demo_probe,
    "deauth": _demo_deauth,
    "battery": _demo_battery,
    "locate": _demo_locate,
    "survey": _demo_survey,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Polite WiFi reproduction demos",
    )
    parser.add_argument(
        "demo", nargs="?", default="probe", choices=sorted(_DEMOS),
        help="which demo to run (default: probe)",
    )
    args = parser.parse_args(argv)
    return _DEMOS[args.demo]()


if __name__ == "__main__":
    sys.exit(main())
