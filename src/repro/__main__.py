"""Command-line runner: ``python -m repro [demo|campaign ...]``.

Gives a new user one command per headline result:

* ``probe``      — the Figure 2 fake-frame → ACK exchange (default);
* ``deauth``     — Figure 3: the AP barks and ACKs anyway;
* ``battery``    — a quick Figure 6 power sweep;
* ``locate``     — ACK-timing localization of a victim device;
* ``survey``     — a small wardriving survey (Table 2 shape);

plus the campaign orchestrator (see ``docs/telemetry.md``)::

    python -m repro campaign --scenario wardrive --seeds 8 --workers 4 \
        --out manifest.json

The full, narrated versions live in ``examples/``; the full-scale
reproductions in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    ATTACKER_FAKE_MAC,
    Engine,
    FrameTrace,
    MacAddress,
    Medium,
    MonitorDongle,
    PoliteWiFiProbe,
    Position,
    Station,
)


def _demo_probe() -> int:
    engine = Engine()
    trace = FrameTrace()
    medium = Medium(engine, trace=trace)
    rng = np.random.default_rng(0)
    victim = Station(
        mac=MacAddress("f2:6e:0b:11:22:33"),
        medium=medium, position=Position(0, 0), rng=rng,
    )
    attacker = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:01"),
        medium=medium, position=Position(5, 0), rng=rng,
    )
    result = PoliteWiFiProbe(attacker).probe(victim.mac)
    print(trace.to_table())
    print(
        f"\nPolite WiFi: responded={result.responded}, "
        f"ACK after {result.ack_latency_s * 1e6:.0f} us"
    )
    return 0 if result.responded else 1


def _demo_deauth() -> int:
    from repro.core.injector import FakeFrameInjector
    from repro.devices.access_point import AccessPoint, ApBehavior

    engine = Engine()
    trace = FrameTrace()
    medium = Medium(engine, trace=trace)
    rng = np.random.default_rng(1)
    ap = AccessPoint(
        mac=MacAddress("0c:00:1e:00:00:01"), medium=medium,
        position=Position(0, 0, 2), rng=rng,
        behavior=ApBehavior(deauth_on_unknown=True),
    )
    attacker = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:01"),
        medium=medium, position=Position(8, 0), rng=rng,
    )
    FakeFrameInjector(attacker).inject_null(ap.mac)
    engine.run_until(1.0)
    print(trace.to_table())
    print(
        f"\ndeauth frames: {trace.count_info('Deauthentication')}, "
        f"ACKs to the fake frame: {trace.count_info('Acknowledgement')}"
    )
    return 0


def _demo_battery() -> int:
    from repro.core.battery import BatteryDrainAttack
    from repro.devices.access_point import AccessPoint
    from repro.devices.esp import Esp8266Device

    engine = Engine()
    medium = Medium(engine)
    rng = np.random.default_rng(42)
    ap = AccessPoint(
        mac=MacAddress("0c:00:1e:00:00:02"), medium=medium,
        position=Position(0, 0, 2), rng=rng,
        ssid="IoTNet", passphrase="iot network key",
    )
    victim = Esp8266Device(
        mac=MacAddress("02:e8:26:60:00:01"), medium=medium,
        position=Position(5, 0, 1), rng=rng,
    )
    victim.connect(ap.mac, "IoTNet", "iot network key")
    engine.run_until(1.0)
    victim.enter_power_save()
    attacker = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:02"), medium=medium,
        position=Position(12, 0, 1), rng=rng,
    )
    attack = BatteryDrainAttack(attacker, victim)
    print("rate (pkt/s)  power (mW)")
    for rate in (0, 10, 50, 200, 900):
        point = attack.measure_power(float(rate), duration_s=5.0)
        print(f"{rate:>11}  {point.average_power_mw:>9.1f}")
    return 0


def _demo_locate() -> int:
    from repro.core.localization import AckRangingSensor, LocalizationAttack

    engine = Engine()
    medium = Medium(engine)
    rng = np.random.default_rng(7)
    truth = Position(18.0, 12.0, 1.0)
    victim = Station(
        mac=MacAddress("f2:6e:0b:11:22:33"),
        medium=medium, position=truth, rng=rng,
    )
    dongle = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:03"),
        medium=medium, position=Position(0, 0, 1), rng=rng,
    )
    attack = LocalizationAttack(AckRangingSensor(dongle))
    result = attack.locate(
        victim.mac,
        anchor_positions=[
            Position(0, 0, 1), Position(40, 0, 1),
            Position(0, 40, 1), Position(40, 40, 1),
        ],
        probes_per_anchor=60,
        truth=truth,
    )
    for m in result.measurements:
        print(
            f"anchor ({m.anchor.x:4.0f},{m.anchor.y:4.0f})  "
            f"range {m.distance_m:6.2f} m  (+/-{m.standard_error_m:.2f})"
        )
    print(
        f"\nvictim at ({truth.x:.1f}, {truth.y:.1f}); "
        f"estimated ({result.estimated.x:.1f}, {result.estimated.y:.1f}); "
        f"error {result.error_m:.2f} m"
    )
    return 0


def _demo_survey() -> int:
    from repro.core.wardrive import WardriveConfig, WardrivePipeline
    from repro.survey.city import CityConfig, SyntheticCity

    engine = Engine()
    medium = Medium(engine)
    city = SyntheticCity(
        engine, medium,
        CityConfig(
            population_scale=0.05, keep_all_vendors=False,
            blocks_x=4, blocks_y=3,
        ),
    )
    pipeline = WardrivePipeline(city, WardriveConfig())
    results = pipeline.run()
    print(results.to_table(top=10))
    return 0


_DEMOS = {
    "probe": _demo_probe,
    "deauth": _demo_deauth,
    "battery": _demo_battery,
    "locate": _demo_locate,
    "survey": _demo_survey,
}


def _parse_seeds(text: str):
    """``"8"`` means seeds 0..7; ``"3,5,9"`` means exactly those seeds."""
    try:
        if "," in text:
            return [int(part) for part in text.split(",") if part.strip()]
        count = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a seed count or comma-separated seeds, got {text!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError("need at least one seed")
    return list(range(count))


def _parse_param(text: str):
    """``key=value`` with the value coerced to int/float when it parses."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            continue
    return key, raw


def _run_campaign(argv) -> int:
    from repro.telemetry import (
        CampaignConfig,
        available_scenarios,
        run_campaign,
        summarize_manifest,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Fan a scenario out across seeds and aggregate metrics",
    )
    parser.add_argument(
        "--scenario", default="wardrive", choices=available_scenarios(),
        help="registered scenario to run (default: wardrive)",
    )
    parser.add_argument(
        "--seeds", type=_parse_seeds, default=[0],
        help="seed count (N -> seeds 0..N-1) or explicit comma list",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default: 1 = run inline)",
    )
    parser.add_argument(
        "--param", action="append", type=_parse_param, default=[],
        metavar="KEY=VALUE", help="scenario parameter (repeatable)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON run manifest here",
    )
    parser.add_argument("--name", default="", help="campaign name for the manifest")
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse (seed, params) runs already recorded in the manifest "
        "at --out instead of re-executing them",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.out:
        parser.error("--resume requires --out (the manifest to resume from)")
    try:
        config = CampaignConfig(
            scenario=args.scenario,
            seeds=args.seeds,
            params=dict(args.param),
            workers=args.workers,
            name=args.name,
            output_path=args.out,
            resume=args.resume,
        )
        config.expand()  # surface config errors as usage errors, not tracebacks
    except ValueError as exc:
        parser.error(str(exc))
    try:
        manifest = run_campaign(config)
    except ValueError as exc:
        parser.error(str(exc))
    if manifest.get("resumed_runs"):
        print(f"[resumed: {manifest['resumed_runs']} run(s) reused from {args.out}]")
    print(summarize_manifest(manifest))
    if args.out:
        print(f"\n[manifest written to {args.out}]")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        return _run_campaign(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Polite WiFi reproduction demos and campaign runner",
    )
    parser.add_argument(
        "demo", nargs="?", default="probe",
        choices=sorted(_DEMOS) + ["campaign"],
        help="which demo to run (default: probe), or 'campaign ...' "
        "for the parallel campaign orchestrator",
    )
    args = parser.parse_args(argv)
    return _DEMOS[args.demo]()


if __name__ == "__main__":
    sys.exit(main())
