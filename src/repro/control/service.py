"""``python -m repro serve``: a JSON submission service for campaigns.

A deliberately small, stdlib-only (``http.server``) facade over the
driver, for the "campaign box" workflow: one long-lived process on the
machine with the cores, and collaborators submit sweeps with ``curl``
instead of shelling in.  Endpoints (see ``docs/control-plane.md``):

* ``GET  /api/health``            — liveness + registered scenarios;
* ``GET  /api/campaigns``         — every job this service has run;
* ``POST /api/campaigns``         — submit a campaign spec (JSON body);
  replies ``201`` with the job id, or ``400`` naming the invalid field
  (unknown scenario, bad parameter value, unknown spec key);
* ``GET  /api/campaigns/<id>``    — job state + the same fleet snapshot
  ``campaign status`` prints (read from disk, not driver memory);
* ``GET  /api/campaigns/<id>/manifest`` — the merged manifest, ``404``
  until the drive completes.

Each submission gets a directory under the service root
(``<root>/job-0001/...``) and a daemon thread running
:func:`~repro.control.driver.drive_campaign`; jobs survive as
*directories*, so anything the service reports can be re-derived after
a restart with ``campaign status``.

This is an operational convenience, not a security boundary: bind it
to localhost (the default) or a trusted network only.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Union

from repro.control.driver import DriverConfig, drive_campaign
from repro.control.fleet import fleet_status
from repro.scenario import REGISTRY, available_scenarios
from repro.scenario.params import ParameterValueError
from repro.scenario.registry import UnknownParameterError, UnknownScenarioError
from repro.telemetry.export import load_manifest, status_to_json

__all__ = ["ControlService", "make_server", "main"]

#: Request keys `submit` understands; everything else is a 400, so a
#: typo ("worker") cannot silently fall back to a default.
_SUBMIT_KEYS = frozenset(
    {
        "scenario",
        "seeds",
        "params",
        "grid",
        "name",
        "shards",
        "workers_per_shard",
        "run_timeout_s",
        "retries",
        "retry_backoff_s",
        "on_error",
    }
)


class UnknownJobError(KeyError):
    """Lookup of a job id this service never issued."""


class ControlService:
    """The job registry the HTTP handler delegates to.

    Also usable in-process (tests drive it directly): ``submit`` →
    ``status`` → ``manifest`` round-trips without a socket.
    """

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        shards: int = 2,
        workers_per_shard: int = 1,
        heartbeat_s: float = 0.5,
        heartbeat_timeout_s: float = 30.0,
        poll_s: float = 0.2,
        slice_retries: int = 1,
        scenario_modules: tuple = (),
        extra_pythonpath: tuple = (),
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.defaults = {
            "shards": shards,
            "workers_per_shard": workers_per_shard,
            "heartbeat_s": heartbeat_s,
            "heartbeat_timeout_s": heartbeat_timeout_s,
            "poll_s": poll_s,
            "slice_retries": slice_retries,
            "scenario_modules": tuple(scenario_modules),
            "extra_pythonpath": tuple(extra_pythonpath),
        }
        self._jobs: Dict[str, Dict[str, object]] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def submit(self, request: Dict[str, object]) -> Dict[str, object]:
        """Validate a submission, start its driver thread, return the job.

        Raises ``ValueError`` (including the scenario/parameter
        subclasses) on anything wrong with the request — the handler
        maps those to ``400`` — *before* any process is spawned.
        """
        if not isinstance(request, dict):
            raise ValueError("campaign submission must be a JSON object")
        unknown = sorted(set(request) - _SUBMIT_KEYS)
        if unknown:
            raise ValueError(
                f"unknown submission key(s): {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(_SUBMIT_KEYS))}"
            )
        scenario = request.get("scenario")
        if not scenario or not isinstance(scenario, str):
            raise ValueError("submission needs a 'scenario' (string)")
        entry = REGISTRY.get(scenario)  # raises UnknownScenarioError
        params = dict(request.get("params") or {})
        params = entry.coerce_params(params)
        grid = request.get("grid") or None
        if grid is not None:
            if not isinstance(grid, dict) or not all(
                isinstance(v, list) and v for v in grid.values()
            ):
                raise ValueError(
                    "'grid' must map parameter names to non-empty value lists"
                )
            grid = {
                key: [
                    entry.coerce_params({key: value})[key] for value in values
                ]
                for key, values in grid.items()
            }
        seeds = _parse_seeds(request.get("seeds", [0]))
        shards = int(request.get("shards") or self.defaults["shards"])
        workers = int(
            request.get("workers_per_shard")
            or self.defaults["workers_per_shard"]
        )
        with self._lock:
            job_id = f"job-{next(self._ids):04d}"
        job_dir = self.root / job_id
        config = DriverConfig(
            scenario=scenario,
            out_dir=job_dir,
            seeds=seeds,
            params=params,
            grid=grid,
            name=str(request.get("name") or ""),
            run_timeout_s=request.get("run_timeout_s"),
            retries=int(request.get("retries") or 0),
            retry_backoff_s=float(request.get("retry_backoff_s") or 0.0),
            on_error=str(request.get("on_error") or "raise"),
            heartbeat_s=self.defaults["heartbeat_s"],
            shards=shards,
            workers_per_shard=workers,
            heartbeat_timeout_s=self.defaults["heartbeat_timeout_s"],
            poll_s=self.defaults["poll_s"],
            slice_retries=self.defaults["slice_retries"],
            scenario_modules=self.defaults["scenario_modules"],
            extra_pythonpath=self.defaults["extra_pythonpath"],
        )
        config.validate()
        job: Dict[str, object] = {
            "id": job_id,
            "dir": str(job_dir),
            "scenario": scenario,
            "state": "running",
            "error": None,
            "submitted_unix": time.time(),
            "finished_unix": None,
        }
        with self._lock:
            self._jobs[job_id] = job
        thread = threading.Thread(
            target=self._run_job,
            args=(job, config),
            name=f"drive-{job_id}",
            daemon=True,
        )
        thread.start()
        job["_thread"] = thread
        return self.describe(job_id)

    def _run_job(self, job: Dict[str, object], config: DriverConfig) -> None:
        try:
            drive_campaign(config)
        except Exception as exc:  # noqa: BLE001 - job boundary
            job["state"] = "failed"
            job["error"] = str(exc)
        else:
            job["state"] = "done"
        job["finished_unix"] = time.time()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _get(self, job_id: str) -> Dict[str, object]:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"unknown campaign job {job_id!r}") from None

    def describe(self, job_id: str) -> Dict[str, object]:
        """The job record (sans thread handle) plus navigation links."""
        job = self._get(job_id)
        return {
            **{k: v for k, v in job.items() if not k.startswith("_")},
            "links": {
                "status": f"/api/campaigns/{job_id}",
                "manifest": f"/api/campaigns/{job_id}/manifest",
            },
        }

    def status(self, job_id: str) -> Dict[str, object]:
        """Job record + on-disk fleet snapshot (same source of truth as
        ``campaign status <dir>``)."""
        described = self.describe(job_id)
        job_dir = pathlib.Path(described["dir"])
        described["fleet"] = (
            fleet_status(job_dir) if job_dir.is_dir() else None
        )
        return described

    def manifest(self, job_id: str) -> Dict[str, object]:
        """The merged manifest; ``FileNotFoundError`` until it exists."""
        path = pathlib.Path(self._get(job_id)["dir"]) / "manifest.json"
        if not path.exists():
            raise FileNotFoundError(
                f"campaign {job_id} has no merged manifest yet"
            )
        return load_manifest(path)

    def list_jobs(self) -> List[Dict[str, object]]:
        with self._lock:
            ids = sorted(self._jobs)
        return [self.describe(job_id) for job_id in ids]


def _parse_seeds(raw: object) -> List[int]:
    """``8`` -> seeds 0..7 (matching the CLI); ``[3, 5]`` -> exactly those."""
    if isinstance(raw, bool):
        raise ValueError("'seeds' must be an integer count or a list of ints")
    if isinstance(raw, int):
        if raw < 1:
            raise ValueError("'seeds' count must be >= 1")
        return list(range(raw))
    if isinstance(raw, list) and raw and all(
        isinstance(s, int) and not isinstance(s, bool) for s in raw
    ):
        return list(raw)
    raise ValueError("'seeds' must be an integer count or a non-empty int list")


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class _ControlServer(ThreadingHTTPServer):
    daemon_threads = True
    service: ControlService


class _Handler(BaseHTTPRequestHandler):
    server: _ControlServer

    # Silence the default per-request stderr logging; the service's
    # observable surface is its JSON, not access logs.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _reply(self, code: int, payload: Dict[str, object]) -> None:
        body = status_to_json(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._reply(code, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.rstrip("/") or "/"
        service = self.server.service
        if path == "/api/health":
            self._reply(
                200, {"ok": True, "scenarios": available_scenarios()}
            )
        elif path == "/api/campaigns":
            self._reply(200, {"campaigns": service.list_jobs()})
        elif path.startswith("/api/campaigns/"):
            parts = path[len("/api/campaigns/"):].split("/")
            try:
                if len(parts) == 1:
                    self._reply(200, service.status(parts[0]))
                elif len(parts) == 2 and parts[1] == "manifest":
                    self._reply(200, service.manifest(parts[0]))
                else:
                    self._error(404, f"no such endpoint: {self.path}")
            except UnknownJobError as exc:
                self._error(404, str(exc))
            except FileNotFoundError as exc:
                self._error(404, str(exc))
        else:
            self._error(404, f"no such endpoint: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") != "/api/campaigns":
            self._error(404, f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, OSError) as exc:
            self._error(400, f"unreadable JSON body: {exc}")
            return
        try:
            job = self.server.service.submit(request)
        except (
            UnknownScenarioError,
            UnknownParameterError,
            ParameterValueError,
            ValueError,
        ) as exc:
            self._error(400, str(exc.args[0] if isinstance(exc, KeyError) else exc))
            return
        self._reply(201, job)


def make_server(
    service: ControlService, host: str = "127.0.0.1", port: int = 0
) -> _ControlServer:
    """Bind the service to ``host:port`` (port 0 = ephemeral, for tests);
    caller runs ``serve_forever()`` / ``shutdown()``."""
    server = _ControlServer((host, port), _Handler)
    server.service = service
    return server


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro serve`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="HTTP JSON service: submit campaigns, poll fleet "
        "status, fetch merged manifests (see docs/control-plane.md)",
    )
    parser.add_argument(
        "--root", default="campaign-jobs", metavar="DIR",
        help="directory job outputs land under (default: ./campaign-jobs)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--shards", type=int, default=2,
        help="shard subprocesses per submitted campaign (default: 2)",
    )
    parser.add_argument(
        "--workers-per-shard", type=int, default=1,
        help="pool workers inside each shard (default: 1)",
    )
    args = parser.parse_args(argv)
    service = ControlService(
        args.root, shards=args.shards, workers_per_shard=args.workers_per_shard
    )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"repro control service on http://{host}:{port} (root: {args.root})")
    print("POST /api/campaigns to submit; Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0
