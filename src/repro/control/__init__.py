"""Campaign control plane: drive, watch, and serve sharded campaigns.

``repro.telemetry.campaign`` (PR 6) gave campaigns a deterministic
N-way shard split, streaming JSONL sidecars, and an identity-validated
merge — but left a human in the loop: start N processes by hand, watch
them, restart the one that died, run ``campaign merge``.  This package
is that human, mechanized (see ``docs/control-plane.md``):

* **driver** (:mod:`repro.control.driver`) — spawns every shard as a
  subprocess, tails their sidecars, declares a silent shard dead on
  heartbeat timeout, relaunches its slice (``--resume`` makes the steal
  exact: the round-robin split is deterministic, completed runs are
  replayed from the sidecar), and auto-merges the shard manifests
  through the same identity-validation path as ``campaign merge`` —
  so a driven campaign with a SIGKILLed shard still produces an
  aggregate byte-identical to an unsharded run;
* **fleet** (:mod:`repro.control.fleet`) — a point-in-time fleet view
  reconstructed from the sidecars alone, so ``campaign status <dir>``
  works against a running fleet, a crashed one, or a finished one,
  with no driver cooperation required;
* **tailer** (:mod:`repro.control.tailer`) — incremental JSONL reader
  the driver watches sidecars with (complete lines only; a torn
  trailing line is left unconsumed until its newline arrives);
* **service** (:mod:`repro.control.service`) — a stdlib-only HTTP JSON
  facade (``python -m repro serve``): submit a campaign spec, poll
  fleet status, fetch the merged manifest.
"""

from repro.control.driver import DriverConfig, DriverError, drive_campaign
from repro.control.fleet import fleet_status, render_fleet_status
from repro.control.service import ControlService, make_server
from repro.control.tailer import SidecarTailer

__all__ = [
    "ControlService",
    "DriverConfig",
    "DriverError",
    "SidecarTailer",
    "drive_campaign",
    "fleet_status",
    "make_server",
    "render_fleet_status",
]
