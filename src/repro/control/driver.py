"""The campaign driver: one process that runs a whole sharded fleet.

:func:`drive_campaign` takes a :class:`DriverConfig`, writes the
campaign spec to ``<out_dir>/campaign.json``, and spawns one ``python
-m repro campaign --spec-file ... --shard i/N --resume`` subprocess per
shard.  From then on it only *watches*: each shard's JSONL sidecar is
tailed incrementally (:class:`~repro.control.tailer.SidecarTailer`),
and sidecar activity — run records and the heartbeat thread's beats —
is the liveness signal.

Death has two faces, and the driver handles both the same way:

* the process **exited** without writing its shard manifest (crash,
  SIGKILL, nonzero exit);
* the process is **silent**: no sidecar record for longer than
  ``heartbeat_timeout_s``.  Since shards heartbeat from a dedicated
  thread even mid-run, silence means hung or dead — a merely *slow*
  shard keeps beating and is never shot (the false-positive case the
  tests pin).  A silent shard is SIGKILLed before relaunch so two
  processes never write one sidecar.

Either way the shard's remaining slice is reassigned: the dead shard
is relaunched on the same shard index with ``--resume``.  Because the
round-robin split is deterministic (run *k* belongs to shard ``k %
N``) and completed runs replay from the sidecar, the steal is *exact*
— no run is lost, duplicated, or re-executed.  Each shard gets
``slice_retries`` relaunches; exhausting the budget raises
:class:`DriverError` (with the shard's log tail) rather than merging
a partial campaign.

When every shard has produced its manifest, the driver merges them via
:func:`~repro.telemetry.campaign.merge_manifest_files` — the same
identity-validating path as ``campaign merge`` — into
``<out_dir>/manifest.json``.  The end-to-end guarantee, pinned by
``tests/test_control_driver.py``: a driven campaign with a shard
SIGKILLed mid-run produces a merged aggregate **byte-identical** to an
unsharded run of the same campaign.

Throughout, the driver mirrors its view to ``<out_dir>/driver.json``
(atomic replace) so ``campaign status`` and the HTTP service can read
fleet state without touching the driver's memory.

The ``chaos_*`` knobs exist for the fault-injection tests and
``make control-smoke``: they SIGKILL (or SIGSTOP, simulating a hang)
one shard after its first run record, exercising the reassignment
machinery on demand.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import repro
from repro.scenario.registry import SCENARIO_MODULES_ENV
from repro.telemetry.campaign import (
    CampaignConfig,
    merge_manifest_files,
    shard_manifest_path,
    sidecar_path,
)
from repro.telemetry.export import write_status

__all__ = ["DriverConfig", "DriverError", "drive_campaign"]

#: ``on_event`` callback: receives small dicts like
#: ``{"kind": "reassign", "shard": 2, ...}``.
EventFn = Callable[[Dict[str, object]], None]


class DriverError(RuntimeError):
    """The fleet cannot finish: a shard exhausted its relaunch budget
    (or the driver was misconfigured).  Completed runs stay on disk in
    the shard sidecars; a later ``drive`` over the same directory
    resumes them."""


@dataclass
class DriverConfig:
    """One driven campaign: the spec, the fleet shape, and the policies.

    The campaign fields (``scenario`` ... ``on_error``) mirror
    :class:`~repro.telemetry.campaign.CampaignConfig`; the rest shape
    the fleet (``shards``, ``workers_per_shard``) and the driver's
    failure policy (``heartbeat_timeout_s``, ``slice_retries``).
    """

    scenario: str
    out_dir: Union[str, pathlib.Path]
    seeds: Sequence[int] = (0,)
    params: Dict[str, object] = field(default_factory=dict)
    grid: Optional[Dict[str, Sequence[object]]] = None
    name: str = ""
    run_timeout_s: Optional[float] = None
    retries: int = 0
    retry_backoff_s: float = 0.0
    on_error: str = "raise"
    #: Shard subprocesses heartbeat at this interval (must be well under
    #: ``heartbeat_timeout_s`` or every shard looks dead).
    heartbeat_s: float = 0.5
    shards: int = 2
    workers_per_shard: int = 1
    #: A shard with no sidecar record for this long is declared dead,
    #: SIGKILLed, and relaunched.  Keep it a comfortable multiple of
    #: ``heartbeat_s``.
    heartbeat_timeout_s: float = 30.0
    #: Until a shard's *first* sidecar record, the effective timeout is
    #: ``max(heartbeat_timeout_s, startup_grace_s)``: interpreter boot
    #: and imports produce no sidecar output, and a tight heartbeat
    #: timeout must not shoot a shard that is merely still starting.
    startup_grace_s: float = 30.0
    #: Driver monitor-loop cadence (also the driver.json refresh rate).
    poll_s: float = 0.1
    #: Relaunches allowed per shard before the drive fails.
    slice_retries: int = 1
    #: Extra modules shard subprocesses import for scenario registration
    #: (exported as ``REPRO_SCENARIO_MODULES``); needed whenever the
    #: scenario is not in ``repro.scenario.library``.
    scenario_modules: Sequence[str] = ()
    #: Prepended to the subprocesses' ``PYTHONPATH`` (after repro's own
    #: src directory) so ``scenario_modules`` resolve.
    extra_pythonpath: Sequence[str] = ()
    #: Fault injection: SIGKILL this shard index after its first run
    #: record (once), proving the slice steal end to end.
    chaos_kill_shard: Optional[int] = None
    #: Fault injection: SIGSTOP this shard instead — a hang, not a
    #: crash; the process lingers but its heartbeats stop.
    chaos_stop_shard: Optional[int] = None

    def validate(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards!r}")
        if self.workers_per_shard < 1:
            raise ValueError(
                f"workers_per_shard must be >= 1, got {self.workers_per_shard!r}"
            )
        if self.heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat_s must be positive, got {self.heartbeat_s!r}"
            )
        if self.heartbeat_timeout_s <= self.heartbeat_s:
            raise ValueError(
                f"heartbeat_timeout_s ({self.heartbeat_timeout_s!r}) must "
                f"exceed heartbeat_s ({self.heartbeat_s!r}), else live "
                f"shards look dead"
            )
        if self.poll_s <= 0:
            raise ValueError(f"poll_s must be positive, got {self.poll_s!r}")
        if self.startup_grace_s < 0:
            raise ValueError(
                f"startup_grace_s must be >= 0, got {self.startup_grace_s!r}"
            )
        if self.slice_retries < 0:
            raise ValueError(
                f"slice_retries must be >= 0, got {self.slice_retries!r}"
            )
        for knob, value in (
            ("chaos_kill_shard", self.chaos_kill_shard),
            ("chaos_stop_shard", self.chaos_stop_shard),
        ):
            if value is not None and not 0 <= value < self.shards:
                raise ValueError(
                    f"{knob} must be a shard index in [0, {self.shards}), "
                    f"got {value!r}"
                )

    def campaign_config(self) -> CampaignConfig:
        """The campaign every shard runs a slice of."""
        return CampaignConfig(
            scenario=self.scenario,
            seeds=list(self.seeds),
            params=dict(self.params),
            grid=dict(self.grid) if self.grid else None,
            name=self.name,
            run_timeout_s=self.run_timeout_s,
            retries=self.retries,
            retry_backoff_s=self.retry_backoff_s,
            on_error=self.on_error,
            heartbeat_s=self.heartbeat_s,
        )


class _Shard:
    """The driver's view of one shard: process, tailer, attempt count."""

    def __init__(self, index: int, manifest: pathlib.Path) -> None:
        from repro.control.tailer import SidecarTailer

        self.index = index
        self.manifest = manifest
        self.tailer = SidecarTailer(sidecar_path(manifest))
        self.proc: Optional[subprocess.Popen] = None
        self.log: Optional[object] = None
        self.log_path: Optional[pathlib.Path] = None
        self.state = "pending"
        self.attempts = 0
        self.runs = 0
        self.last_activity = 0.0
        self.saw_output = False
        self.chaos_pending = False

    def snapshot(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "state": self.state,
            "attempts": self.attempts,
            "runs": self.runs,
            "pid": self.proc.pid if self.proc else None,
            "last_activity_unix": self.last_activity or None,
            "manifest": str(self.manifest) if self.manifest.exists() else None,
        }


def _subprocess_env(config: DriverConfig) -> Dict[str, str]:
    """The shard environment: repro importable, scenario modules known."""
    env = dict(os.environ)
    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    paths = [src_dir, *map(str, config.extra_pythonpath)]
    if env.get("PYTHONPATH"):
        paths.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(paths))
    modules = [
        m.strip()
        for m in env.get(SCENARIO_MODULES_ENV, "").split(",")
        if m.strip()
    ]
    modules += [str(m) for m in config.scenario_modules]
    if modules:
        env[SCENARIO_MODULES_ENV] = ",".join(dict.fromkeys(modules))
    return env


def _log_tail(path: Optional[pathlib.Path], lines: int = 15) -> str:
    if path is None or not path.exists():
        return "(no shard log)"
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return "(shard log unreadable)"
    tail = text.strip().splitlines()[-lines:]
    return "\n".join(tail) if tail else "(shard log empty)"


def drive_campaign(
    config: DriverConfig, on_event: Optional[EventFn] = None
) -> Dict[str, object]:
    """Run a full sharded campaign under supervision; return the merge.

    Blocks until every shard's slice is complete and merged (or raises
    :class:`DriverError`).  The result carries the merged manifest, its
    path, and the fleet accounting the fault tests assert on
    (``reassignments``, per-shard ``attempts``).
    """
    config.validate()
    campaign = config.campaign_config()
    campaign.validate()
    plan_runs = len(campaign.expand())
    _check_scenario(config)

    out_dir = pathlib.Path(config.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    spec_path = write_status(campaign.to_spec_dict(), out_dir / "campaign.json")
    merged_path = out_dir / "manifest.json"

    def emit(kind: str, **fields: object) -> None:
        if on_event is not None:
            on_event({"kind": kind, **fields})

    shards = [
        _Shard(i, shard_manifest_path(merged_path, i, config.shards))
        for i in range(config.shards)
    ]
    env = _subprocess_env(config)
    started = time.time()
    reassignments = 0

    def spawn(shard: _Shard) -> None:
        shard.attempts += 1
        shard.tailer.reset()
        shard.runs = 0
        shard.log_path = out_dir / f"shard{shard.index + 1}of{config.shards}.log"
        shard.log = open(shard.log_path, "a", encoding="utf-8")
        shard.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign",
                "--spec-file",
                str(spec_path),
                "--shard",
                f"{shard.index + 1}/{config.shards}",
                "--out",
                str(merged_path),
                "--resume",
                "--workers",
                str(config.workers_per_shard),
            ],
            stdout=shard.log,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=str(out_dir),
        )
        shard.state = "running"
        shard.last_activity = time.time()
        shard.saw_output = False
        shard.chaos_pending = shard.index in (
            config.chaos_kill_shard,
            config.chaos_stop_shard,
        ) and shard.attempts == 1
        emit(
            "spawn",
            shard=shard.index,
            attempt=shard.attempts,
            pid=shard.proc.pid,
        )

    def write_driver_status(state: str) -> None:
        write_status(
            {
                "state": state,
                "campaign": config.name or config.scenario,
                "scenario": config.scenario,
                "shard_count": config.shards,
                "plan_runs": plan_runs,
                "started_unix": started,
                "updated_unix": time.time(),
                "reassignments": reassignments,
                "heartbeat_timeout_s": config.heartbeat_timeout_s,
                "slice_retries": config.slice_retries,
                "spec": str(spec_path),
                "manifest": str(merged_path) if merged_path.exists() else None,
                "shards": [shard.snapshot() for shard in shards],
            },
            out_dir / "driver.json",
        )

    def declare_dead(shard: _Shard, reason: str) -> None:
        nonlocal reassignments
        if shard.proc is not None and shard.proc.poll() is None:
            shard.proc.kill()  # SIGKILL also fells a SIGSTOPped process
            shard.proc.wait()
        if shard.log is not None:
            shard.log.close()
            shard.log = None
        emit("dead", shard=shard.index, reason=reason)
        if shard.attempts > config.slice_retries:
            shard.state = "failed"
            write_driver_status("failed")
            raise DriverError(
                f"shard {shard.index + 1}/{config.shards} died "
                f"({reason}) and its relaunch budget "
                f"({config.slice_retries}) is spent; last log lines:\n"
                f"{_log_tail(shard.log_path)}"
            )
        reassignments += 1
        emit(
            "reassign",
            shard=shard.index,
            attempt=shard.attempts + 1,
            reason=reason,
        )
        spawn(shard)

    try:
        for shard in shards:
            spawn(shard)
        write_driver_status("running")
        while any(s.state == "running" for s in shards):
            time.sleep(config.poll_s)
            now = time.time()
            for shard in shards:
                if shard.state != "running":
                    continue
                records = shard.tailer.poll()
                if records:
                    shard.last_activity = now
                    shard.saw_output = True
                    shard.runs += sum(
                        1
                        for r in records
                        if r.get("kind") is None and "seed" in r
                    )
                if shard.chaos_pending and shard.runs >= 1:
                    shard.chaos_pending = False
                    if shard.index == config.chaos_kill_shard:
                        emit("chaos-kill", shard=shard.index)
                        shard.proc.kill()
                    else:
                        emit("chaos-stop", shard=shard.index)
                        os.kill(shard.proc.pid, signal.SIGSTOP)
                returncode = shard.proc.poll()
                if returncode is not None:
                    # Final drain: the manifest write and the last runs
                    # may have landed after the previous poll.
                    if shard.tailer.poll():
                        shard.last_activity = now
                    if shard.manifest.exists():
                        shard.state = "done"
                        if shard.log is not None:
                            shard.log.close()
                            shard.log = None
                        emit(
                            "done",
                            shard=shard.index,
                            returncode=returncode,
                            runs=shard.runs,
                        )
                    else:
                        declare_dead(
                            shard,
                            f"exited with code {returncode} before writing "
                            f"its manifest",
                        )
                else:
                    allowed = (
                        config.heartbeat_timeout_s
                        if shard.saw_output
                        else max(
                            config.heartbeat_timeout_s, config.startup_grace_s
                        )
                    )
                    if now - shard.last_activity > allowed:
                        declare_dead(
                            shard,
                            f"no sidecar activity for "
                            f"{now - shard.last_activity:.1f}s "
                            f"(timeout {allowed}s)",
                        )
            write_driver_status("running")
        merged = merge_manifest_files(
            [shard.manifest for shard in shards], output_path=merged_path
        )
        emit("merged", manifest=str(merged_path), runs=len(merged["runs"]))
        write_driver_status("done")
    finally:
        for shard in shards:
            if shard.proc is not None and shard.proc.poll() is None:
                shard.proc.kill()
                shard.proc.wait()
            if shard.log is not None:
                shard.log.close()
                shard.log = None
    return {
        "manifest": merged,
        "manifest_path": str(merged_path),
        "out_dir": str(out_dir),
        "plan_runs": plan_runs,
        "reassignments": reassignments,
        "shard_attempts": {shard.index: shard.attempts for shard in shards},
    }


def _check_scenario(config: DriverConfig) -> None:
    """Fail fast on a scenario name nothing will ever resolve.

    Out-of-tree scenarios (``scenario_modules`` set) are resolved by
    the shard subprocesses, not here — the driver process may not have
    them importable — so the check only applies to supposedly built-in
    names."""
    if config.scenario_modules:
        return
    from repro.scenario import REGISTRY
    from repro.scenario.registry import UnknownScenarioError

    try:
        REGISTRY.get(config.scenario)
    except UnknownScenarioError as exc:
        raise DriverError(str(exc)) from None
