"""Fleet status reconstructed from a campaign directory's artifacts.

``campaign status <dir>`` must answer "how is my sweep doing?" against
a fleet it does not control: shards launched by the driver, by hand on
N machines, or long dead.  So :func:`fleet_status` takes *no* live
handles — it reads what's on disk:

* ``*.runs.jsonl`` sidecars — per-shard progress (run records), shard
  identity (the ``campaign-meta`` line), and liveness (heartbeats +
  file mtime);
* ``campaign.json`` — the campaign spec, if the driver (or a human)
  wrote one: names the scenario and sizes the full run plan;
* ``driver.json`` — the driver's own status snapshot, if a driver is
  (or was) attached: contributes attempt counts and failure verdicts
  the sidecars alone can't know.

Both JSON files are optional; sidecars alone produce a usable view.
A missing sidecar for a known shard reads as ``pending``, a torn
trailing line is skipped (shared sidecar parsing), and a shard whose
last sign of life is older than the stall threshold reads as
``stalled`` — which is a *suspicion*, not a verdict; only the driver
(which can see process exits) marks a shard ``failed``.
"""

from __future__ import annotations

import pathlib
import re
import time
from typing import Dict, List, Optional, Union

from repro.telemetry.campaign import CampaignConfig, parse_sidecar_text

__all__ = ["fleet_status", "render_fleet_status"]

#: Fallback stall threshold when no spec declares a heartbeat interval.
_DEFAULT_STALL_AFTER_S = 30.0

#: Stalled = no activity for this many heartbeat intervals.
_STALL_HEARTBEATS = 4.0

_SHARD_NAME_RE = re.compile(r"\.shard(\d+)of(\d+)\.[^.]+\.runs\.jsonl$")


def _read_json(path: pathlib.Path) -> Optional[Dict[str, object]]:
    """A JSON object from ``path``, or ``None`` for missing/unreadable/
    non-object content (status must degrade, never crash)."""
    import json

    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def _is_run_record(record: Dict[str, object]) -> bool:
    return record.get("kind") is None and "seed" in record and "params" in record


def _inspect_sidecar(path: pathlib.Path) -> Dict[str, object]:
    """Everything one sidecar says about its shard (tolerant of torn
    trailing lines and of the file vanishing mid-read)."""
    info: Dict[str, object] = {
        "sidecar": str(path),
        "shard_index": None,
        "shard_count": None,
        "runs": 0,
        "failed": 0,
        "completed": None,
        "pending": None,
        "last_heartbeat_unix": None,
        "last_activity_unix": None,
    }
    try:
        text = path.read_text(encoding="utf-8")
        mtime = path.stat().st_mtime
    except OSError:
        return info
    info["last_activity_unix"] = mtime
    for record in parse_sidecar_text(text):
        kind = record.get("kind")
        if kind == "campaign-meta":
            shard = record.get("shard")
            if isinstance(shard, dict):
                info["shard_index"] = shard.get("index")
                info["shard_count"] = shard.get("count")
        elif kind == "heartbeat":
            info["last_heartbeat_unix"] = record.get("unix")
            info["completed"] = record.get("completed")
            info["pending"] = record.get("pending")
        elif _is_run_record(record):
            info["runs"] = int(info["runs"]) + 1
            if record.get("status", "ok") != "ok":
                info["failed"] = int(info["failed"]) + 1
    beat = info["last_heartbeat_unix"]
    if isinstance(beat, (int, float)):
        info["last_activity_unix"] = max(float(mtime), float(beat))
    # The filename is a fallback identity for sidecars whose meta line
    # was torn away (out.shard1of4.json.runs.jsonl).
    if info["shard_index"] is None:
        match = _SHARD_NAME_RE.search(path.name)
        if match:
            info["shard_index"] = int(match.group(1)) - 1
            info["shard_count"] = int(match.group(2))
    return info


#: Partition knobs (docs/partitioning.md) surfaced by ``campaign
#: status`` when a sweep drives a tiled scenario such as wardrive-metro.
_TILING_KEYS = ("tiles_x", "tiles_y", "tile_workers")


def _tiling_of(config: CampaignConfig) -> Optional[Dict[str, object]]:
    """The sweep's tile/worker knobs, or ``None`` for untiled scenarios.

    A grid axis reports its full value list (the sweep covers them
    all); a plain param reports the single value every run shares.
    """
    values: Dict[str, object] = {}
    for key in _TILING_KEYS:
        if config.grid and key in config.grid:
            values[key] = list(config.grid[key])
        elif key in config.params:
            values[key] = config.params[key]
    return values or None


def _manifest_for(sidecar: pathlib.Path) -> pathlib.Path:
    """``out.shard1of2.json.runs.jsonl`` -> ``out.shard1of2.json``."""
    return sidecar.with_name(sidecar.name[: -len(".runs.jsonl")])


def fleet_status(
    campaign_dir: Union[str, pathlib.Path],
    stall_after_s: Optional[float] = None,
    now: Optional[float] = None,
) -> Dict[str, object]:
    """A point-in-time fleet snapshot for one campaign directory.

    ``stall_after_s`` overrides the stall threshold (default: four
    heartbeat intervals when the spec declares one, else 30s); ``now``
    pins the clock for tests.  The result is JSON-safe and serialized
    canonically by :func:`repro.telemetry.export.status_to_json`.
    """
    directory = pathlib.Path(campaign_dir)
    if not directory.is_dir():
        raise ValueError(f"not a campaign directory: {directory}")
    now = time.time() if now is None else now
    spec = _read_json(directory / "campaign.json")
    driver = _read_json(directory / "driver.json")

    plan_runs: Optional[int] = None
    heartbeat_s: Optional[float] = None
    scenario: Optional[str] = None
    campaign_name: Optional[str] = None
    tiling: Optional[Dict[str, object]] = None
    if spec is not None:
        try:
            config = CampaignConfig.from_spec_dict(spec)
            plan_runs = len(config.expand())
            heartbeat_s = config.heartbeat_s
            scenario = config.scenario
            campaign_name = config.name or config.scenario
            tiling = _tiling_of(config)
        except ValueError:
            spec = None  # a broken spec degrades to sidecar-only status
    if stall_after_s is None:
        stall_after_s = (
            _STALL_HEARTBEATS * heartbeat_s
            if heartbeat_s
            else _DEFAULT_STALL_AFTER_S
        )

    observed = [
        _inspect_sidecar(path)
        for path in sorted(directory.glob("*.runs.jsonl"))
    ]
    shard_count: Optional[int] = None
    if driver and isinstance(driver.get("shard_count"), int):
        shard_count = driver["shard_count"]
    else:
        counts = {
            info["shard_count"]
            for info in observed
            if isinstance(info["shard_count"], int)
        }
        if len(counts) == 1:
            shard_count = counts.pop()

    driver_shards: Dict[int, Dict[str, object]] = {}
    if driver:
        for entry in driver.get("shards", []):
            if isinstance(entry, dict) and isinstance(entry.get("index"), int):
                driver_shards[entry["index"]] = entry

    by_index: Dict[Optional[int], Dict[str, object]] = {
        info["shard_index"]: info for info in observed
    }
    indices: List[Optional[int]] = (
        list(range(shard_count)) if shard_count else sorted(
            by_index, key=lambda i: (i is None, i)
        )
    )

    shards: List[Dict[str, object]] = []
    for index in indices:
        info = by_index.get(index)
        from_driver = driver_shards.get(index) if isinstance(index, int) else None
        if info is None:
            entry: Dict[str, object] = {
                "index": index,
                "state": "pending",
                "sidecar": None,
                "runs": 0,
                "failed": 0,
                "completed": None,
                "pending": None,
                "last_heartbeat_unix": None,
                "last_activity_unix": None,
                "age_s": None,
                "manifest": None,
            }
        else:
            manifest = _manifest_for(pathlib.Path(info["sidecar"]))
            last = info["last_activity_unix"]
            age = now - float(last) if isinstance(last, (int, float)) else None
            if manifest.exists():
                state = "done"
            elif age is not None and age > stall_after_s:
                state = "stalled"
            else:
                state = "running"
            entry = {
                **info,
                "state": state,
                "age_s": age,
                "manifest": str(manifest) if manifest.exists() else None,
            }
            entry.pop("shard_index")
            entry.pop("shard_count")
            entry["index"] = index
        if from_driver:
            # The driver has ground truth the sidecars lack: exit codes
            # (failed beats stalled) and relaunch attempts.
            if from_driver.get("state") == "failed":
                entry["state"] = "failed"
            if "attempts" in from_driver:
                entry["attempts"] = from_driver["attempts"]
        shards.append(entry)

    merged = directory / "manifest.json"
    states = [s["state"] for s in shards]
    if driver and driver.get("state") in ("done", "failed"):
        overall = driver["state"]
    elif shards and all(state == "done" for state in states):
        overall = "done" if merged.exists() else "merge-pending"
    elif "failed" in states:
        overall = "failed"
    elif "stalled" in states:
        overall = "stalled"
    else:
        overall = "running"

    return {
        "dir": str(directory),
        "campaign": campaign_name,
        "scenario": scenario,
        "generated_unix": now,
        "stall_after_s": stall_after_s,
        "plan_runs": plan_runs,
        "shard_count": shard_count,
        "tiling": tiling,
        "state": overall,
        "driver": (
            {
                "state": driver.get("state"),
                "reassignments": driver.get("reassignments"),
                "updated_unix": driver.get("updated_unix"),
            }
            if driver
            else None
        ),
        "shards": shards,
        "merged_manifest": str(merged) if merged.exists() else None,
    }


def _age_text(age: Optional[object]) -> str:
    if not isinstance(age, (int, float)):
        return "-"
    return f"{age:.1f}s ago"


def render_fleet_status(status: Dict[str, object]) -> str:
    """The ``campaign status`` table for one :func:`fleet_status` snapshot."""
    lines = [
        f"campaign : {status['campaign'] or '(no campaign.json)'}"
        + (f"  [scenario {status['scenario']}]" if status["scenario"] else ""),
        f"dir      : {status['dir']}",
        f"state    : {status['state']}"
        + (
            f"  ({status['plan_runs']} run(s) planned across "
            f"{status['shard_count']} shard(s))"
            if status["plan_runs"] is not None and status["shard_count"]
            else ""
        ),
    ]
    tiling = status.get("tiling")
    if tiling:
        lines.append(
            "tiling   : "
            + ", ".join(f"{key}={value}" for key, value in tiling.items())
        )
    driver = status.get("driver")
    if driver:
        lines.append(
            f"driver   : {driver['state']}, "
            f"{driver.get('reassignments') or 0} slice reassignment(s)"
        )
    shards = status["shards"]
    if not shards:
        lines.append("(no shard sidecars found)")
        return "\n".join(lines)
    lines.append(
        f"{'SHARD':<7} {'STATE':<9} {'RUNS':>5} {'FAILED':>7} "
        f"{'PENDING':>8} {'LAST ACTIVITY':<15} {'ATTEMPTS':>8}"
    )
    count = status["shard_count"]
    for shard in shards:
        index = shard["index"]
        label = (
            f"{index + 1}/{count}"
            if isinstance(index, int) and count
            else (str(index + 1) if isinstance(index, int) else "-")
        )
        pending = shard["pending"]
        lines.append(
            f"{label:<7} {shard['state']:<9} {shard['runs']:>5} "
            f"{shard['failed']:>7} "
            f"{pending if pending is not None else '-':>8} "
            f"{_age_text(shard['age_s']):<15} "
            f"{shard.get('attempts', '-'):>8}"
        )
    merged = status["merged_manifest"]
    lines.append(
        f"merged   : {merged if merged else '(not merged yet)'}"
    )
    return "\n".join(lines)
