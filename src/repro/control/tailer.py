"""Incremental JSONL sidecar tailing for the campaign driver.

A shard's sidecar is an append-only stream of JSON lines (meta, run
records, heartbeats) that the shard flushes per record.  The driver
needs to watch N of them cheaply and repeatedly, which rules out
re-reading whole files every poll; and it must never act on a *torn*
line — the driver's dead-shard verdict hinges on "has this sidecar
produced anything lately", so treating a half-written record as
garbage (rather than waiting for its newline) would misread an
actively-writing shard.

:class:`SidecarTailer` therefore reads from a remembered byte offset
and only consumes up to the last newline; the partial tail stays
unconsumed until a later poll completes it.  A file that *shrank* —
the signature of a relaunched shard rewriting its sidecar for
``--resume`` replay — resets the tailer to the top so the replayed
records are re-observed.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Union

from repro.telemetry.campaign import parse_sidecar_record

__all__ = ["SidecarTailer"]


class SidecarTailer:
    """Poll one sidecar file for newly completed records.

    Each :meth:`poll` returns the records appended since the previous
    poll (possibly none).  The file not existing yet is not an error —
    the shard just hasn't opened it — and parsing reuses
    :func:`~repro.telemetry.campaign.parse_sidecar_record`, so the
    tolerance for blank/garbage lines matches every other sidecar
    consumer.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._offset = 0

    @property
    def offset(self) -> int:
        """Bytes of the file consumed so far (complete lines only)."""
        return self._offset

    def reset(self) -> None:
        """Forget all progress; the next poll re-reads from the top."""
        self._offset = 0

    def poll(self) -> List[Dict[str, object]]:
        """Records whose closing newline has landed since the last poll."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self._offset:
            # The file was rewritten (shard relaunched with --resume);
            # start over so the replayed records are observed again.
            self._offset = 0
        if size == self._offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        boundary = chunk.rfind(b"\n")
        if boundary < 0:
            return []  # only a torn tail so far; leave it unconsumed
        complete, self._offset = chunk[: boundary + 1], self._offset + boundary + 1
        records = []
        for line in complete.decode("utf-8", errors="replace").splitlines():
            record = parse_sidecar_record(line)
            if record is not None:
                records.append(record)
        return records
