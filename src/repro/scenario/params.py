"""Typed, coerced scenario parameter schemas.

``param_names`` (PR 5) made ``--param`` typos fail fast; this module
adds the next layer: a *schema* declaring what each parameter **is** —
an int in a range, a positive float, one of a fixed set of choices, a
boolean — so values arriving as strings (``--param`` on the command
line, JSON over the control plane's HTTP surface) are coerced to their
declared type and range-checked *before* the scenario runs, with error
messages that name the scenario, the parameter, and the constraint that
was violated.

Declare a schema at registration time::

    @scenario(
        "my-sweep",
        param_schema={
            "devices": IntParam(minimum=1, maximum=10_000),
            "scale": FloatParam(minimum=0.0, exclusive_minimum=True),
            "mode": ChoiceParam(("fast", "exact")),
            "verbose": BoolParam(),
        },
    )
    def my_sweep(ctx):
        ...

``param_schema`` subsumes ``param_names`` (the schema's keys become the
declared surface when ``param_names`` is omitted); parameters without a
schema entry pass through untouched, so schemas can be adopted
incrementally.  Every front end — ``run_scenario``, ``python -m repro
run``, the campaign runner (base params *and* grid values), and the
control-plane HTTP service — coerces through the same
:meth:`~repro.scenario.registry.RegisteredScenario.coerce_params` path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "BoolParam",
    "ChoiceParam",
    "FloatParam",
    "IntParam",
    "ParamSpec",
    "ParameterValueError",
    "StrParam",
    "coerce_params",
]


class ParameterValueError(ValueError):
    """A parameter value failed its schema check.

    The message names the scenario, the parameter, the offending value,
    and the declared constraint, so a ``--param`` mistake is a one-line
    fix rather than a stack trace.
    """

    def __init__(self, scenario: str, name: str, value: object, reason: str) -> None:
        super().__init__(
            f"invalid value {value!r} for parameter {name!r} of scenario "
            f"{scenario!r}: {reason}"
        )
        self.scenario = scenario
        self.param = name
        self.value = value
        self.reason = reason


_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class ParamSpec:
    """Base class: one parameter's declared type and constraints.

    Subclasses implement :meth:`_convert` (raw value -> typed value, or
    raise ``ValueError`` with a human reason) and may override
    :meth:`_check` for range/choice constraints.  :meth:`describe`
    renders the constraint for error messages and ``--list`` output.
    """

    def coerce(self, scenario: str, name: str, value: object) -> object:
        try:
            typed = self._convert(value)
        except (TypeError, ValueError) as exc:
            raise ParameterValueError(
                scenario, name, value, str(exc) or f"expected {self.describe()}"
            ) from None
        reason = self._check(typed)
        if reason is not None:
            raise ParameterValueError(scenario, name, value, reason)
        return typed

    def _convert(self, value: object) -> object:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, value: object) -> Optional[str]:
        return None

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe description (fingerprinted and served over HTTP)."""
        return {"kind": type(self).__name__, "constraint": self.describe()}


@dataclass(frozen=True)
class IntParam(ParamSpec):
    """An integer, optionally bounded (bounds inclusive)."""

    minimum: Optional[int] = None
    maximum: Optional[int] = None

    def _convert(self, value: object) -> int:
        if isinstance(value, bool):
            raise ValueError("expected an integer, got a boolean")
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if not value.is_integer():
                raise ValueError("expected an integer, got a non-integral float")
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError:
                raise ValueError("expected an integer") from None
        raise ValueError("expected an integer")

    def _check(self, value: int) -> Optional[str]:
        if self.minimum is not None and value < self.minimum:
            return f"must be >= {self.minimum}"
        if self.maximum is not None and value > self.maximum:
            return f"must be <= {self.maximum}"
        return None

    def describe(self) -> str:
        bounds = _bounds_note(self.minimum, self.maximum, False)
        return f"an integer{bounds}"


@dataclass(frozen=True)
class FloatParam(ParamSpec):
    """A float, optionally bounded; ``exclusive_minimum`` makes the
    lower bound strict (the common "must be positive" case)."""

    minimum: Optional[float] = None
    maximum: Optional[float] = None
    exclusive_minimum: bool = False

    def _convert(self, value: object) -> float:
        if isinstance(value, bool):
            raise ValueError("expected a number, got a boolean")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                raise ValueError("expected a number") from None
        raise ValueError("expected a number")

    def _check(self, value: float) -> Optional[str]:
        if value != value:  # NaN never satisfies a range
            return "must be a finite number"
        if self.minimum is not None:
            if self.exclusive_minimum and value <= self.minimum:
                return f"must be > {self.minimum}"
            if not self.exclusive_minimum and value < self.minimum:
                return f"must be >= {self.minimum}"
        if self.maximum is not None and value > self.maximum:
            return f"must be <= {self.maximum}"
        return None

    def describe(self) -> str:
        bounds = _bounds_note(self.minimum, self.maximum, self.exclusive_minimum)
        return f"a number{bounds}"


@dataclass(frozen=True)
class BoolParam(ParamSpec):
    """A boolean; strings accept true/false, yes/no, on/off, 1/0."""

    def _convert(self, value: object) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            word = value.strip().lower()
            if word in _TRUE_WORDS:
                return True
            if word in _FALSE_WORDS:
                return False
        raise ValueError("expected a boolean (true/false, yes/no, on/off, 1/0)")

    def describe(self) -> str:
        return "a boolean (true/false)"


@dataclass(frozen=True)
class ChoiceParam(ParamSpec):
    """One of a fixed set of values; string input matches ``str(choice)``
    so ``--param mode=2`` can select the integer choice ``2``."""

    choices: Tuple[object, ...] = ()

    def __init__(self, choices: Sequence[object]) -> None:
        object.__setattr__(self, "choices", tuple(choices))
        if not self.choices:
            raise ValueError("ChoiceParam needs at least one choice")

    def _convert(self, value: object) -> object:
        if value in self.choices:
            return self.choices[self.choices.index(value)]
        if isinstance(value, str):
            text = value.strip()
            for choice in self.choices:
                if text == str(choice):
                    return choice
        raise ValueError(f"expected {self.describe()}")

    def describe(self) -> str:
        return "one of " + ", ".join(str(c) for c in self.choices)


@dataclass(frozen=True)
class StrParam(ParamSpec):
    """Any string (declares the parameter without constraining it)."""

    def _convert(self, value: object) -> str:
        if isinstance(value, str):
            return value
        raise ValueError("expected a string")

    def describe(self) -> str:
        return "a string"


def _bounds_note(
    minimum: Optional[float], maximum: Optional[float], exclusive_minimum: bool
) -> str:
    parts = []
    if minimum is not None:
        parts.append(f"{'>' if exclusive_minimum else '>='} {minimum}")
    if maximum is not None:
        parts.append(f"<= {maximum}")
    return f" ({', '.join(parts)})" if parts else ""


def coerce_params(
    scenario: str,
    schema: Optional[Dict[str, ParamSpec]],
    params: Optional[Dict[str, object]],
) -> Dict[str, object]:
    """Coerce ``params`` through ``schema``; keys without a schema entry
    pass through untouched.  Raises :class:`ParameterValueError` on the
    first violation."""
    if not params:
        return dict(params or {})
    if not schema:
        return dict(params)
    coerced: Dict[str, object] = {}
    for key, value in params.items():
        spec = schema.get(key)
        coerced[key] = spec.coerce(scenario, key, value) if spec else value
    return coerced
