"""Declarative description of one simulation run.

A :class:`ScenarioSpec` is the single source of truth for *how a
simulation is wired*: the seed every random stream descends from, the
band, which observability surfaces are on (frame trace, CSI tagging,
metrics, span tracing), the channel realism knobs (path loss / FER
models), optional declarative device placements, and the scenario's
parameter dict.  It deliberately contains only JSON-serializable fields
so a spec can ride inside a campaign manifest and be rebuilt from it —
``ScenarioSpec.from_dict(spec.to_dict())`` round-trips exactly.

The spec says *what* to build; :class:`~repro.scenario.context.SimContext`
is the one place that builds it.  Everything that used to be copy-pasted
Engine/Medium/RNG wiring across the CLI demos, examples, benchmarks, and
campaign scenarios is now a handful of spec fields.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Optional

__all__ = ["PlacementSpec", "ScenarioSpec", "BAND_FREQUENCIES_HZ"]

#: Carrier frequency the medium uses for each supported band label.
#: (2.437 GHz = 2.4 GHz channel 6; 5.18 GHz = 5 GHz channel 36.)
BAND_FREQUENCIES_HZ: Dict[str, float] = {
    "2.4GHz": 2.437e9,
    "5GHz": 5.18e9,
}


@dataclass
class PlacementSpec:
    """One device to materialize into the simulation.

    ``kind`` selects the device class (see
    :meth:`~repro.scenario.context.SimContext.place_devices` for the
    supported kinds); ``role`` is the key the materialized device is
    returned under, so scenario code reads ``devices["victim"]`` instead
    of tracking construction order.  ``options`` is passed through to the
    device constructor (``ssid``, ``passphrase``, ``vendor``,
    ``channel``, and — for access points — a nested ``behavior`` dict
    built into an :class:`~repro.devices.access_point.ApBehavior`).
    """

    kind: str
    mac: str
    role: str
    x: float = 0.0
    y: float = 0.0
    z: float = 0.0
    options: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PlacementSpec":
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class ScenarioSpec:
    """Everything needed to wire one deterministic simulation.

    Determinism contract: **all randomness descends from** ``seed``.
    The context's root RNG is ``np.random.default_rng(seed)``; the
    medium's RNG (when ``seed_medium`` is on) is an independent
    ``default_rng(seed)`` stream; a shadowing model draws from
    ``default_rng(path_loss["seed"])``.  Nothing reads global NumPy
    state, so two contexts built from equal specs produce byte-identical
    traces.
    """

    #: Root seed; every random stream in the run derives from it.
    seed: int = 0
    #: Band label (key of :data:`BAND_FREQUENCIES_HZ`).
    band: str = "2.4GHz"
    #: How long ``run()`` drives the engine (``None`` = scenario decides).
    duration_s: Optional[float] = None
    #: Capture every frame into a :class:`~repro.sim.trace.FrameTrace`.
    trace: bool = False
    #: Bound the trace buffer (``None`` = unbounded).
    trace_capacity: Optional[int] = None
    #: Attach a :class:`~repro.channel.csi.CsiChannelModel` so receptions
    #: carry per-subcarrier channel estimates.
    csi: bool = False
    #: CSI measurement-noise config for the CSI model, e.g.
    #: ``{"snr_db": 35.0, "seed": 5007}`` (implies ``csi``); ``None``
    #: keeps noiseless estimates.
    csi_noise: Optional[Dict[str, object]] = None
    #: Create a MetricsRegistry and thread it through the engine/medium.
    metrics: bool = True
    #: Enable the SpanTracer (and, with ``metrics``, export span totals
    #: into the metrics snapshot as ``span.*`` wall-time counters).
    spans: bool = False
    #: Give the medium ``default_rng(seed)`` (FER sampling etc.).  Off by
    #: default: the simple demos historically ran an unseeded medium.
    seed_medium: bool = False
    #: Explicit medium RNG seed, independent of ``seed`` (overrides
    #: ``seed_medium``; the Table 2 benchmark pins this to 98).
    medium_seed: Optional[int] = None
    #: Path-loss model config, e.g. ``{"kind": "shadowed", "exponent":
    #: 2.8, "walls": 1, "sigma_db": 4.0, "seed": 99}``.  ``None`` keeps
    #: the medium's free-space default.
    path_loss: Optional[Dict[str, object]] = None
    #: Frame-error model name (``"snr"``) or ``None`` for lossless.
    fer: Optional[str] = None
    #: Struct-of-arrays delivery evaluation in the medium (see
    #: ``repro.sim.medium``).  ``False`` selects the per-receiver scalar
    #: path; both produce byte-identical seeded traces, so this is a
    #: performance toggle, not a semantic one.
    vectorized_medium: bool = True
    #: Declarative device placements, materialized by
    #: :meth:`SimContext.place_devices`.
    placements: List[PlacementSpec] = field(default_factory=list)
    #: Scenario parameters (the campaign ``--param`` surface).
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.band not in BAND_FREQUENCIES_HZ:
            known = ", ".join(sorted(BAND_FREQUENCIES_HZ))
            raise ValueError(f"unknown band {self.band!r}; known bands: {known}")
        self.placements = [
            p if isinstance(p, PlacementSpec) else PlacementSpec.from_dict(p)
            for p in self.placements
        ]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    @property
    def frequency_hz(self) -> float:
        return BAND_FREQUENCIES_HZ[self.band]

    def derive(self, **overrides: object) -> "ScenarioSpec":
        """A copy with ``overrides`` applied (the campaign runner uses
        this to stamp each run's seed and parameters onto the scenario's
        template spec).  ``params`` overrides *merge over* the template's
        params instead of replacing them."""
        if "params" in overrides:
            merged = dict(self.params)
            merged.update(overrides["params"])  # type: ignore[arg-type]
            overrides = {**overrides, "params": merged}
        return replace(self, **overrides)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # JSON round-tripping (manifests)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["placements"] = [p.to_dict() for p in self.placements]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**data)  # type: ignore[arg-type]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
