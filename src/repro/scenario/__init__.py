"""Declarative scenario layer (see ``docs/scenarios.md``).

One spec, one context, one registry:

* :class:`ScenarioSpec` — a JSON-round-trippable description of a run
  (seed, band, trace/CSI/metrics/span options, channel models, device
  placements, parameters);
* :class:`SimContext` — the single canonical Engine + Medium + RNG +
  trace + metrics wiring, built lazily from a spec;
* :data:`REGISTRY` / :func:`scenario` — named scenarios every front end
  shares: ``python -m repro run <name>``, ``python -m repro campaign
  --scenario <name>``, examples, and benchmarks.
"""

from repro.scenario.context import SimContext
from repro.scenario.params import (
    BoolParam,
    ChoiceParam,
    FloatParam,
    IntParam,
    ParamSpec,
    ParameterValueError,
    StrParam,
)
from repro.scenario.registry import (
    REGISTRY,
    SCENARIO_MODULES_ENV,
    DuplicateScenarioError,
    RegisteredScenario,
    ScenarioRegistry,
    ScenarioResult,
    UnknownParameterError,
    UnknownScenarioError,
    available_scenarios,
    run_scenario,
    scenario,
)
from repro.scenario.spec import BAND_FREQUENCIES_HZ, PlacementSpec, ScenarioSpec

__all__ = [
    "BAND_FREQUENCIES_HZ",
    "BoolParam",
    "ChoiceParam",
    "DuplicateScenarioError",
    "FloatParam",
    "IntParam",
    "ParamSpec",
    "ParameterValueError",
    "PlacementSpec",
    "REGISTRY",
    "RegisteredScenario",
    "SCENARIO_MODULES_ENV",
    "ScenarioRegistry",
    "ScenarioResult",
    "ScenarioSpec",
    "SimContext",
    "StrParam",
    "UnknownParameterError",
    "UnknownScenarioError",
    "available_scenarios",
    "run_scenario",
    "scenario",
]
