"""Built-in scenarios: the paper's headline results as registry entries.

Each scenario is the declarative successor of a hand-wired entry point:
the five ``python -m repro`` demos and the two campaign scenarios that
used to live in ``repro/telemetry/scenarios.py`` all collapse onto the
five entries here.  Every one is seeded, sized to finish in roughly a
second at its default parameters, campaign-safe (narration goes through
``ctx.say`` so workers stay silent), and parameterizable via
``--param k=v``.

* ``probe``    — Figure 2: fake null frame → ACK within one SIFS;
* ``deauth``   — Figure 3: the AP barks deauths and ACKs anyway;
* ``battery``  — Figure 6: power vs fake-frame rate on the ESP8266
  (parameters: ``rates_pps``, ``duration_s``, ``distance_m``);
* ``locate``   — ACK-timing trilateration of a victim device
  (parameters: ``probes_per_anchor``, ``area_m``);
* ``wardrive`` — Table 2 shape: synthetic city, discover → inject →
  verify (parameters: ``population_scale``, ``blocks_x``, ``blocks_y``,
  ``beacon_interval``, ``vehicle_speed_mps``, ``probe_attempts``, …);
* ``wardrive-full`` — Table 2 at full scale: all 5,328 devices from the
  186-vendor census (parameters: ``max_devices``, ``activate_radius_m``,
  ``beacon_interval``, ``vehicle_speed_mps``, ``probe_attempts``, …);
* ``wardrive-metro`` — the metro-scale census on the tiled multi-process
  medium (``docs/partitioning.md``; parameters: ``tiles_x``,
  ``tiles_y``, ``tile_workers``, ``epoch_s``, ``halo_m``,
  ``metro_scale``, ``blocks_x``, ``blocks_y``, ``max_devices``, …).
"""

from __future__ import annotations

from typing import Dict

from repro.scenario.context import SimContext
from repro.scenario.params import BoolParam, ChoiceParam, FloatParam, IntParam
from repro.scenario.registry import scenario
from repro.scenario.spec import PlacementSpec, ScenarioSpec

__all__ = [
    "probe",
    "deauth",
    "battery",
    "locate",
    "wardrive",
    "wardrive_full",
    "wardrive_metro",
]


@scenario(
    "probe",
    param_names=(),
    spec=ScenarioSpec(
        seed=0,
        trace=True,
        placements=[
            PlacementSpec(
                kind="station", role="victim", mac="f2:6e:0b:11:22:33", x=0, y=0
            ),
            PlacementSpec(
                kind="monitor_dongle", role="attacker",
                mac="02:dd:00:00:00:01", x=5, y=0,
            ),
        ],
    ),
    description="Figure 2 — a fake frame from a stranger is ACKed in one SIFS",
)
def probe(ctx: SimContext) -> Dict[str, object]:
    """The Figure 2 fake-frame → ACK exchange."""
    from repro.core.probe import PoliteWiFiProbe

    devices = ctx.place_devices()
    result = PoliteWiFiProbe(devices["attacker"]).probe(devices["victim"].mac)
    if ctx.verbose:
        ctx.say(ctx.trace.to_table())
        ctx.say(
            f"\nPolite WiFi: responded={result.responded}, "
            f"ACK after {result.ack_latency_s * 1e6:.0f} us"
        )
    return {
        "responded": int(result.responded),
        "attempts": result.attempts,
        "ack_latency_us": result.ack_latency_s * 1e6,
    }


@scenario(
    "deauth",
    param_names=(),
    spec=ScenarioSpec(
        seed=1,
        trace=True,
        duration_s=1.0,
        placements=[
            PlacementSpec(
                kind="access_point", role="ap", mac="0c:00:1e:00:00:01",
                x=0, y=0, z=2, options={"behavior": {"deauth_on_unknown": True}},
            ),
            PlacementSpec(
                kind="monitor_dongle", role="attacker",
                mac="02:dd:00:00:00:01", x=8, y=0,
            ),
        ],
    ),
    description="Figure 3 — the AP deauths the intruder yet still ACKs",
)
def deauth(ctx: SimContext) -> Dict[str, object]:
    """Figure 3: deauthentication bursts don't stop the ACKs."""
    from repro.core.injector import FakeFrameInjector

    devices = ctx.place_devices()
    FakeFrameInjector(devices["attacker"]).inject_null(devices["ap"].mac)
    ctx.run()
    deauths = ctx.trace.count_info("Deauthentication")
    acks = ctx.trace.count_info("Acknowledgement")
    if ctx.verbose:
        ctx.say(ctx.trace.to_table())
        ctx.say(
            f"\ndeauth frames: {deauths}, ACKs to the fake frame: {acks}"
        )
    return {"deauth_frames": deauths, "acks": acks}


@scenario(
    "battery",
    param_names=("rates_pps", "duration_s", "distance_m"),
    param_schema={
        # rates_pps stays schema-free: it is a sequence, which the typed
        # layer deliberately does not model yet.
        "duration_s": FloatParam(minimum=0.0, exclusive_minimum=True),
        "distance_m": FloatParam(minimum=0.0, exclusive_minimum=True),
    },
    spec=ScenarioSpec(seed=42),
    description="Figure 6 — battery-drain sweep against one ESP8266",
)
def battery(ctx: SimContext) -> Dict[str, object]:
    """Figure 6: power vs fake-frame rate on a power-save IoT device."""
    from repro.core.battery import BatteryDrainAttack
    from repro.devices.access_point import AccessPoint
    from repro.devices.dongle import MonitorDongle
    from repro.devices.esp import Esp8266Device
    from repro.mac.addresses import MacAddress
    from repro.sim.world import Position

    params = ctx.params
    rates = tuple(float(r) for r in params.get("rates_pps", (0, 50, 200)))
    duration_s = float(params.get("duration_s", 3.0))
    distance_m = float(params.get("distance_m", 12.0))

    # The attacker's distance is a parameter, so these placements stay in
    # code; all wiring still comes from the context.
    engine, medium, rng = ctx.engine, ctx.medium, ctx.rng
    ap = AccessPoint(
        mac=MacAddress("0c:00:1e:00:00:02"),
        medium=medium, position=Position(0, 0, 2), rng=rng,
        ssid="IoTNet", passphrase="iot network key",
    )
    victim = Esp8266Device(
        mac=MacAddress("02:e8:26:60:00:01"),
        medium=medium, position=Position(5, 0, 1), rng=rng,
    )
    victim.connect(ap.mac, "IoTNet", "iot network key")
    engine.run_until(1.0)
    victim.enter_power_save()
    attacker = MonitorDongle(
        mac=MacAddress("02:dd:00:00:00:02"),
        medium=medium, position=Position(distance_m, 0, 1), rng=rng,
    )
    attack = BatteryDrainAttack(attacker, victim)
    points = attack.sweep(rates_pps=rates, duration_s=duration_s)
    if ctx.verbose:
        ctx.say("rate (pkt/s)  power (mW)")
        for point in points:
            ctx.say(f"{point.rate_pps:>11.0f}  {point.average_power_mw:>9.1f}")
    peak = max(points, key=lambda p: p.average_power_mw)
    return {
        "baseline_power_mw": points[0].average_power_mw,
        "peak_power_mw": peak.average_power_mw,
        "amplification": BatteryDrainAttack.amplification(points),
        "acks_transmitted": sum(p.acks_transmitted for p in points),
        "frames_received": sum(p.frames_received for p in points),
    }


@scenario(
    "locate",
    param_names=("probes_per_anchor", "area_m"),
    param_schema={
        "probes_per_anchor": IntParam(minimum=1),
        "area_m": FloatParam(minimum=1.0),
    },
    spec=ScenarioSpec(
        seed=7,
        placements=[
            PlacementSpec(
                kind="station", role="victim", mac="f2:6e:0b:11:22:33",
                x=18.0, y=12.0, z=1.0,
            ),
            PlacementSpec(
                kind="monitor_dongle", role="attacker",
                mac="02:dd:00:00:00:03", x=0, y=0, z=1,
            ),
        ],
    ),
    description="ACK-timing trilateration of an uncooperative device",
)
def locate(ctx: SimContext) -> Dict[str, object]:
    """Localization through ACK time-of-flight from four anchors."""
    from repro.core.localization import AckRangingSensor, LocalizationAttack
    from repro.sim.world import Position

    params = ctx.params
    probes = int(params.get("probes_per_anchor", 60))
    area = float(params.get("area_m", 40.0))

    devices = ctx.place_devices()
    victim = devices["victim"]
    truth = victim.radio.current_position(0.0)
    attack = LocalizationAttack(AckRangingSensor(devices["attacker"]))
    result = attack.locate(
        victim.mac,
        anchor_positions=[
            Position(0, 0, 1), Position(area, 0, 1),
            Position(0, area, 1), Position(area, area, 1),
        ],
        probes_per_anchor=probes,
        truth=truth,
    )
    if ctx.verbose:
        for m in result.measurements:
            ctx.say(
                f"anchor ({m.anchor.x:4.0f},{m.anchor.y:4.0f})  "
                f"range {m.distance_m:6.2f} m  (+/-{m.standard_error_m:.2f})"
            )
        ctx.say(
            f"\nvictim at ({truth.x:.1f}, {truth.y:.1f}); "
            f"estimated ({result.estimated.x:.1f}, {result.estimated.y:.1f}); "
            f"error {result.error_m:.2f} m"
        )
    return {
        "error_m": result.error_m,
        "estimated_x": result.estimated.x,
        "estimated_y": result.estimated.y,
    }


@scenario(
    "wardrive",
    param_names=(
        "population_scale", "keep_all_vendors", "blocks_x", "blocks_y",
        "beacon_interval", "probe_attempts", "vehicle_speed_mps", "table_top",
    ),
    param_schema={
        "population_scale": FloatParam(minimum=0.0, exclusive_minimum=True, maximum=1.0),
        "keep_all_vendors": BoolParam(),
        "blocks_x": IntParam(minimum=1),
        "blocks_y": IntParam(minimum=1),
        "beacon_interval": FloatParam(minimum=0.01),
        "probe_attempts": IntParam(minimum=1),
        "vehicle_speed_mps": FloatParam(minimum=0.1),
        "table_top": IntParam(minimum=1),
    },
    spec=ScenarioSpec(seed=2020, seed_medium=True, spans=True),
    description="Table 2 shape — wardrive a seeded synthetic city",
)
def wardrive(ctx: SimContext) -> Dict[str, object]:
    """Miniature Section 3 wardrive over a seeded synthetic city."""
    from repro.core.wardrive import WardriveConfig, WardrivePipeline
    from repro.survey.city import CityConfig, SyntheticCity

    params = ctx.params
    with ctx.tracer.span("build-city"):
        city = SyntheticCity(
            ctx.engine,
            ctx.medium,
            CityConfig(
                seed=ctx.spec.seed,
                population_scale=float(params.get("population_scale", 0.01)),
                keep_all_vendors=bool(params.get("keep_all_vendors", False)),
                blocks_x=int(params.get("blocks_x", 2)),
                blocks_y=int(params.get("blocks_y", 2)),
                beacon_interval=float(params.get("beacon_interval", 0.5)),
            ),
        )
        pipeline = WardrivePipeline(
            city,
            WardriveConfig(
                probe_attempts=int(params.get("probe_attempts", 4)),
                vehicle_speed_mps=float(params.get("vehicle_speed_mps", 14.0)),
            ),
        )
    with ctx.tracer.span("drive"):
        results = pipeline.run()
    if ctx.verbose:
        ctx.say(results.to_table(top=int(params.get("table_top", 10))))
    return {
        "population": city.population,
        "discovered": results.total_discovered,
        "probed": len(results.probed),
        "responded": results.total_responded,
        "response_rate": results.response_rate,
    }


@scenario(
    "wardrive-full",
    param_names=(
        "max_devices", "beacon_interval", "client_probe_interval",
        "activate_radius_m", "deactivate_radius_m", "probe_attempts",
        "max_probe_rounds", "vehicle_speed_mps", "table_top",
    ),
    param_schema={
        "max_devices": IntParam(minimum=1),
        "beacon_interval": FloatParam(minimum=0.01),
        "client_probe_interval": FloatParam(minimum=0.01),
        "activate_radius_m": FloatParam(minimum=1.0),
        "deactivate_radius_m": FloatParam(minimum=1.0),
        "probe_attempts": IntParam(minimum=1),
        "max_probe_rounds": IntParam(minimum=1),
        "vehicle_speed_mps": FloatParam(minimum=0.1),
        "table_top": IntParam(minimum=1),
    },
    spec=ScenarioSpec(seed=2020, seed_medium=True, spans=True),
    description="Table 2 at full scale — 5,328 devices, 186 vendors, one city",
)
def wardrive_full(ctx: SimContext) -> Dict[str, object]:
    """The paper's full Section 3 survey: every Table 2 device, one drive.

    The full census (3,805 APs / 1,523 clients across 186 vendors) is
    generated up front; lazy activation keeps only devices near the
    vehicle attached, and the medium's batched arrival scheduling keeps
    the beacon fan-out to two heap entries per transmission, which is
    what makes the full city interactive.  ``max_devices`` caps the
    population for quick modes (CI) without changing the configuration.
    """
    from repro.core.wardrive import WardriveConfig, WardrivePipeline
    from repro.survey.city import CityConfig, SyntheticCity

    params = ctx.params
    max_devices = params.get("max_devices")
    with ctx.tracer.span("build-city"):
        city = SyntheticCity(
            ctx.engine,
            ctx.medium,
            CityConfig(
                seed=ctx.spec.seed,
                population_scale=1.0,
                keep_all_vendors=True,
                max_devices=int(max_devices) if max_devices is not None else None,
                beacon_interval=float(params.get("beacon_interval", 0.6)),
                client_probe_interval=float(
                    params.get("client_probe_interval", 2.5)
                ),
                activate_radius_m=float(params.get("activate_radius_m", 75.0)),
                deactivate_radius_m=float(params.get("deactivate_radius_m", 110.0)),
            ),
        )
        pipeline = WardrivePipeline(
            city,
            WardriveConfig(
                probe_attempts=int(params.get("probe_attempts", 4)),
                max_probe_rounds=int(params.get("max_probe_rounds", 8)),
                vehicle_speed_mps=float(params.get("vehicle_speed_mps", 14.0)),
            ),
        )
    vendors = len({spec.vendor for spec in city.specs})
    route = city.survey_route(pipeline.config.vehicle_speed_mps)
    ctx.say(
        f"city: {city.population} devices across {vendors} vendors; "
        f"route {route.duration:.0f} sim-seconds at "
        f"{pipeline.config.vehicle_speed_mps:g} m/s"
    )
    with ctx.tracer.span("drive"):
        results = pipeline.run()
    acked = results.responded & results.probed
    vendors_responded = len(
        {city.spec_of(mac).vendor for mac in acked if city.spec_of(mac) is not None}
    )
    if ctx.verbose:
        ctx.say(results.to_table(top=int(params.get("table_top", 15))))
    return {
        "population": city.population,
        "vendors": vendors,
        "discovered": results.total_discovered,
        "probed": len(results.probed),
        "responded": results.total_responded,
        "vendors_responded": vendors_responded,
        "response_rate": results.response_rate,
    }


@scenario(
    "wardrive-metro",
    param_names=(
        "tiles_x", "tiles_y", "tile_workers", "epoch_s", "halo_m",
        "metro_scale", "blocks_x", "blocks_y", "max_devices",
        "beacon_interval", "client_probe_interval", "activate_radius_m",
        "deactivate_radius_m", "probe_attempts", "max_probe_rounds",
        "vehicle_speed_mps", "supervise", "heartbeat_s",
        "heartbeat_timeout_s", "tile_retries", "chaos_kill_worker",
        "chaos_kill_epoch", "chaos_kill_phase",
    ),
    param_schema={
        "tiles_x": IntParam(minimum=1),
        "tiles_y": IntParam(minimum=1),
        "tile_workers": IntParam(minimum=1),
        "epoch_s": FloatParam(minimum=0.1),
        "halo_m": FloatParam(minimum=0.0),
        "metro_scale": FloatParam(minimum=0.0, exclusive_minimum=True),
        "blocks_x": IntParam(minimum=1),
        "blocks_y": IntParam(minimum=1),
        "max_devices": IntParam(minimum=1),
        "beacon_interval": FloatParam(minimum=0.01),
        "client_probe_interval": FloatParam(minimum=0.01),
        "activate_radius_m": FloatParam(minimum=1.0),
        "deactivate_radius_m": FloatParam(minimum=1.0),
        "probe_attempts": IntParam(minimum=1),
        "max_probe_rounds": IntParam(minimum=1),
        "vehicle_speed_mps": FloatParam(minimum=0.1),
        "supervise": BoolParam(),
        "heartbeat_s": FloatParam(minimum=0.01),
        "heartbeat_timeout_s": FloatParam(minimum=0.1),
        "tile_retries": IntParam(minimum=0),
        "chaos_kill_worker": IntParam(minimum=0),
        "chaos_kill_epoch": IntParam(minimum=0),
        "chaos_kill_phase": ChoiceParam(["boundary", "mid", "stop", "finish"]),
    },
    spec=ScenarioSpec(seed=2020, seed_medium=True, spans=True),
    description="Metro-scale census on the tiled multi-process medium",
)
def wardrive_metro(ctx: SimContext) -> Dict[str, object]:
    """A >=100k-device metro census on the spatially partitioned medium.

    The Table 2 census is scaled up ``metro_scale`` times over a larger
    street grid, cut into ``tiles_x x tiles_y`` tiles, and surveyed by
    one vehicle whose evidence crosses tile boundaries through the
    deterministic epoch bus (``repro.sim.partition``,
    ``docs/partitioning.md``).  ``tiles_x=tiles_y=1`` is byte-identical
    to the single-process ``wardrive-full`` path at matched city
    parameters; aggregates are tile- and worker-count independent
    (pinned by ``tests/test_partition.py``).  ``max_devices`` caps the
    population for quick modes without changing the configuration shape.
    """
    from repro.sim.partition import PartitionConfig, run_partitioned_wardrive
    from repro.core.wardrive import WardriveConfig
    from repro.survey.city import CityConfig

    params = ctx.params
    max_devices = params.get("max_devices")
    halo_m = float(params.get("halo_m", 0.0))
    city_config = CityConfig(
        seed=ctx.spec.seed,
        blocks_x=int(params.get("blocks_x", 48)),
        blocks_y=int(params.get("blocks_y", 32)),
        population_scale=float(params.get("metro_scale", 20.0)),
        keep_all_vendors=True,
        max_devices=int(max_devices) if max_devices is not None else None,
        beacon_interval=float(params.get("beacon_interval", 0.6)),
        client_probe_interval=float(params.get("client_probe_interval", 2.5)),
        activate_radius_m=float(params.get("activate_radius_m", 75.0)),
        deactivate_radius_m=float(params.get("deactivate_radius_m", 110.0)),
    )
    wardrive_config = WardriveConfig(
        probe_attempts=int(params.get("probe_attempts", 4)),
        max_probe_rounds=int(params.get("max_probe_rounds", 8)),
        vehicle_speed_mps=float(params.get("vehicle_speed_mps", 14.0)),
    )
    chaos = None
    if params.get("chaos_kill_worker") is not None:
        # Fault injection for the chaos smoke / tests: kill (or stall)
        # one worker once and let the supervisor recover it.
        chaos = {
            "worker": int(params["chaos_kill_worker"]),
            "epoch": int(params.get("chaos_kill_epoch", 1)),
            "phase": str(params.get("chaos_kill_phase", "mid")),
        }
    partition = PartitionConfig(
        tiles_x=int(params.get("tiles_x", 4)),
        tiles_y=int(params.get("tiles_y", 3)),
        tile_workers=int(params.get("tile_workers", 1)),
        epoch_s=float(params.get("epoch_s", 30.0)),
        halo_m=halo_m if halo_m > 0.0 else None,
        supervise=bool(params.get("supervise", True)),
        heartbeat_s=float(params.get("heartbeat_s", 0.5)),
        heartbeat_timeout_s=float(params.get("heartbeat_timeout_s", 30.0)),
        tile_retries=int(params.get("tile_retries", 2)),
        chaos=chaos,
    )
    with ctx.tracer.span("drive"):
        outcome = run_partitioned_wardrive(
            ctx, city_config, wardrive_config, partition
        )
    by_mac = {spec.mac.bytes: spec for spec in outcome.specs}
    vendors = len({spec.vendor for spec in outcome.specs})
    acked = outcome.responded & outcome.probed
    vendors_responded = len(
        {by_mac[mac].vendor for mac in acked if mac in by_mac}
    )
    ctx.say(
        f"metro: {outcome.population} devices across {vendors} vendors; "
        f"{outcome.tiles_x}x{outcome.tiles_y} tiles on "
        f"{outcome.tile_workers} worker(s), {outcome.epochs} epochs"
    )
    return {
        "population": outcome.population,
        "vendors": vendors,
        "discovered": len(outcome.discovered),
        "probed": len(outcome.probed),
        "responded": len(outcome.responded),
        "vendors_responded": vendors_responded,
        "response_rate": (len(acked) / len(outcome.probed)) if outcome.probed else 0.0,
        "tiles": outcome.tiles_x * outcome.tiles_y,
        "tile_workers": outcome.tile_workers,
        "epochs": outcome.epochs,
        "idle_epochs": outcome.idle_epochs,
        "halo_radios": outcome.halo_radios,
        "relay_messages": outcome.relay_messages,
        "relay_applied": outcome.relay_applied,
        "relay_halo_tx": outcome.relay_halo_tx,
        "tiles_clamped": outcome.tiles_clamped,
        "recoveries": outcome.recoveries,
    }
