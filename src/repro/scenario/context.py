"""The one canonical Engine/Medium/RNG/trace/metrics wiring.

Before this module existed, every entry point — CLI demos, examples,
benchmarks, campaign scenarios — hand-rolled the same six lines of
setup and quietly re-derived the seeding contract each time.
:class:`SimContext` owns that wiring now: build a
:class:`~repro.scenario.spec.ScenarioSpec`, hand it to a context, and
read ``ctx.engine`` / ``ctx.medium`` / ``ctx.rng`` / ``ctx.trace`` /
``ctx.metrics`` / ``ctx.tracer``.

Everything is built **lazily** on first access, in a fixed order, so a
context is free until used and — crucially — constructs exactly the
objects the pre-refactor call sites constructed, in the same order,
with the same arguments.  The seeded traces of the Figure 2 probe and
the Table 2 wardrive are byte-identical across the refactor, and the
determinism tests pin that.

Randomness: the root RNG is ``np.random.default_rng(spec.seed)``; the
medium and shadowing models get their own independent ``default_rng``
streams per the spec.  Nothing touches NumPy's global state.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.scenario.spec import PlacementSpec, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.sim.engine import Engine
    from repro.sim.medium import Medium
    from repro.sim.trace import FrameTrace
    from repro.telemetry.registry import MetricsRegistry
    from repro.telemetry.spans import SpanTracer

__all__ = ["SimContext"]

_UNSET = object()


def _build_path_loss(config: Dict[str, object]):
    """Materialize a path-loss model from its spec dict."""
    kind = str(config.get("kind", "free_space"))
    if kind == "free_space":
        return None
    from repro.phy.signal import LogDistancePathLoss

    base = LogDistancePathLoss(
        exponent=float(config.get("exponent", 3.0)),
        walls=int(config.get("walls", 0)),
    )
    if kind == "log_distance":
        return base
    if kind == "shadowed":
        from repro.channel.propagation import ShadowedPathLoss

        return ShadowedPathLoss(
            base=base,
            shadowing_sigma_db=float(config.get("sigma_db", 6.0)),
            rng=np.random.default_rng(int(config.get("seed", 0))),
        )
    raise ValueError(f"unknown path_loss kind {kind!r}")


def _build_fer(name: str):
    if name == "snr":
        from repro.phy.signal import SnrFerModel

        return SnrFerModel()
    raise ValueError(f"unknown fer model {name!r}")


class SimContext:
    """Lazily-built simulation wiring for one :class:`ScenarioSpec`.

    Parameters
    ----------
    spec:
        The declarative description of the run.
    metrics:
        An externally-owned registry (the campaign runner passes each
        run's private registry).  When given it is used regardless of
        ``spec.metrics``; when ``None`` a registry is created iff
        ``spec.metrics`` is on.
    quiet:
        Silence :meth:`say` — campaign workers run scenarios quietly,
        the CLI/demos run them narrated.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        metrics: Optional["MetricsRegistry"] = None,
        quiet: bool = False,
    ) -> None:
        self.spec = spec
        self.params: Dict[str, object] = dict(spec.params)
        self.quiet = quiet
        self._metrics = metrics if metrics is not None else _UNSET
        self._engine = _UNSET
        self._medium = _UNSET
        self._trace = _UNSET
        self._csi_model = _UNSET
        self._rng = _UNSET
        self._tracer = _UNSET

    # ------------------------------------------------------------------
    # Narration
    # ------------------------------------------------------------------
    @property
    def verbose(self) -> bool:
        """True when narration should be produced (guard expensive
        rendering like ``trace.to_table()`` behind this)."""
        return not self.quiet

    def say(self, text: str = "") -> None:
        """Print narration unless the context is quiet."""
        if not self.quiet:
            print(text)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    @property
    def rng(self) -> np.random.Generator:
        """Root RNG: ``default_rng(spec.seed)``, created once."""
        if self._rng is _UNSET:
            self._rng = np.random.default_rng(self.spec.seed)
        return self._rng

    def derive_rng(self, label: str) -> np.random.Generator:
        """An independent, reproducible stream keyed on ``label``.

        Both the spec seed and the label feed the seed sequence, so
        distinct labels give uncorrelated streams that still descend
        from the one scenario seed."""
        return np.random.default_rng([self.spec.seed, zlib.crc32(label.encode())])

    # ------------------------------------------------------------------
    # Wiring (lazy, fixed construction order)
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Optional["MetricsRegistry"]:
        if self._metrics is _UNSET:
            if self.spec.metrics:
                from repro.telemetry.registry import MetricsRegistry

                self._metrics = MetricsRegistry()
            else:
                self._metrics = None
        return self._metrics

    @property
    def tracer(self) -> "SpanTracer":
        """Span tracer (disabled unless ``spec.spans``); when metrics are
        on, span totals are exported into the metrics snapshot as
        ``span.<name>.wall_time_*`` counters."""
        if self._tracer is _UNSET:
            from repro.telemetry.spans import NULL_TRACER, SpanTracer

            if self.spec.spans:
                self._tracer = SpanTracer()
                if self.metrics is not None:
                    self._tracer.bind(self.metrics)
            else:
                self._tracer = NULL_TRACER
        return self._tracer

    @property
    def engine(self) -> "Engine":
        if self._engine is _UNSET:
            from repro.sim.engine import Engine

            self._engine = Engine(metrics=self.metrics)
        return self._engine

    @property
    def trace(self) -> Optional["FrameTrace"]:
        if self._trace is _UNSET:
            if self.spec.trace:
                from repro.sim.trace import FrameTrace

                self._trace = FrameTrace(capacity=self.spec.trace_capacity)
            else:
                self._trace = None
        return self._trace

    @property
    def csi_model(self):
        if self._csi_model is _UNSET:
            spec = self.spec
            if spec.csi or spec.csi_noise is not None:
                from repro.channel.csi import CsiChannelModel

                noise = None
                if spec.csi_noise is not None:
                    from repro.channel.noise import CsiMeasurementNoise

                    noise = CsiMeasurementNoise(
                        snr_db=float(spec.csi_noise.get("snr_db", 35.0)),
                        rng=np.random.default_rng(
                            int(spec.csi_noise.get("seed", spec.seed))
                        ),
                    )
                self._csi_model = CsiChannelModel(noise=noise)
            else:
                self._csi_model = None
        return self._csi_model

    @property
    def medium(self) -> "Medium":
        if self._medium is _UNSET:
            from repro.sim.medium import Medium

            spec = self.spec
            medium_rng = None
            if spec.medium_seed is not None:
                medium_rng = np.random.default_rng(spec.medium_seed)
            elif spec.seed_medium:
                medium_rng = np.random.default_rng(spec.seed)
            self._medium = Medium(
                self.engine,
                frequency_hz=spec.frequency_hz,
                path_loss_db=(
                    _build_path_loss(spec.path_loss) if spec.path_loss else None
                ),
                fer=_build_fer(spec.fer) if spec.fer else None,
                csi_model=self.csi_model,
                trace=self.trace,
                rng=medium_rng,
                vectorized=spec.vectorized_medium,
            )
        return self._medium

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Drive the engine to ``until`` (default: ``spec.duration_s``)."""
        end = until if until is not None else self.spec.duration_s
        if end is None:
            raise ValueError(
                "no duration: pass until=... or set ScenarioSpec.duration_s"
            )
        self.engine.run_until(end)

    def snapshot(self) -> Optional[Dict[str, Dict[str, object]]]:
        """The metrics snapshot (span totals included when bound)."""
        return None if self.metrics is None else self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Declarative placements
    # ------------------------------------------------------------------
    def place_devices(self) -> Dict[str, object]:
        """Materialize ``spec.placements`` in order, keyed by role.

        Devices are constructed with the context's root RNG (shared, in
        placement order), which is exactly what the hand-written demos
        did, so migrated scenarios keep their pre-refactor RNG draws.
        """
        devices: Dict[str, object] = {}
        for placement in self.spec.placements:
            if placement.role in devices:
                raise ValueError(f"duplicate placement role {placement.role!r}")
            devices[placement.role] = self.place(placement)
        return devices

    def place(self, placement: PlacementSpec):
        """Build one device from its placement spec."""
        from repro.mac.addresses import MacAddress
        from repro.sim.world import Position

        options = dict(placement.options)
        for key in ("expected_ack_ra", "bssid"):
            if key in options:
                options[key] = MacAddress(str(options[key]))
        common = {
            "mac": MacAddress(placement.mac),
            "medium": self.medium,
            "position": Position(placement.x, placement.y, placement.z),
            "rng": self.rng,
        }
        kind = placement.kind
        if kind == "station":
            from repro.devices.station import Station

            return Station(**common, **options)
        if kind == "access_point":
            from repro.devices.access_point import AccessPoint, ApBehavior

            behavior = options.pop("behavior", None)
            if isinstance(behavior, dict):
                behavior = ApBehavior(**behavior)
            if behavior is not None:
                options["behavior"] = behavior
            return AccessPoint(**common, **options)
        if kind == "monitor_dongle":
            from repro.devices.dongle import MonitorDongle

            return MonitorDongle(**common, **options)
        if kind == "esp8266":
            from repro.devices.esp import Esp8266Device

            return Esp8266Device(**common, **options)
        if kind == "esp32_sniffer":
            from repro.devices.esp import Esp32CsiSniffer

            return Esp32CsiSniffer(**common, **options)
        raise ValueError(f"unknown placement kind {kind!r}")
