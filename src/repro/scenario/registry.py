"""Named scenario registry and the one-call runner.

A *scenario* is a callable ``fn(ctx) -> outputs`` plus a template
:class:`~repro.scenario.spec.ScenarioSpec`.  Registering it gives every
front end the same handle on it:

* ``python -m repro run <name> --param k=v`` runs it narrated;
* ``python -m repro campaign --scenario <name>`` fans it across seeds;
* tests and benchmarks call :func:`run_scenario` directly.

Register with the decorator::

    @scenario("my-sweep", spec=ScenarioSpec(seed=7, trace=True),
              description="one-line summary")
    def my_sweep(ctx):
        devices = ctx.place_devices()
        ...
        ctx.say("narration, silenced inside campaign workers")
        return {"some_count": 42}

Outputs must be a flat dict of JSON-serializable values (campaigns sum
the numeric ones into their aggregate).  This registry subsumes the old
``repro.telemetry.campaign.scenario`` decorator, which now adapts
legacy ``fn(seed, params, metrics)`` callables onto it.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.scenario.context import SimContext
from repro.scenario.params import ParamSpec, coerce_params
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "DuplicateScenarioError",
    "RegisteredScenario",
    "ScenarioRegistry",
    "ScenarioResult",
    "UnknownParameterError",
    "UnknownScenarioError",
    "REGISTRY",
    "SCENARIO_MODULES_ENV",
    "scenario",
    "available_scenarios",
    "run_scenario",
]

#: Comma-separated module paths imported (for their registration side
#: effects) alongside the built-ins.  This is how out-of-tree scenarios
#: reach subprocesses that only know a scenario *name* — the control
#: plane's shard workers, ``python -m repro serve`` submissions, and the
#: perf benchmarks' throwaway scenarios.
SCENARIO_MODULES_ENV = "REPRO_SCENARIO_MODULES"

#: ``fn(ctx) -> outputs``; flat JSON-serializable outputs dict.
ScenarioFn = Callable[[SimContext], Dict[str, object]]


class DuplicateScenarioError(ValueError):
    """A scenario name was registered twice."""


class UnknownScenarioError(KeyError):
    """Lookup of a name nobody registered (message lists known names)."""

    def __init__(self, name: str, known: List[str]) -> None:
        listing = ", ".join(known) or "(none)"
        super().__init__(f"unknown scenario {name!r}; registered: {listing}")
        self.name = name
        self.known = known


class UnknownParameterError(ValueError):
    """A run passed a parameter the scenario never reads.

    Raised before the scenario executes, so ``--param`` typos fail fast
    instead of silently running the scenario at its defaults.  The
    message lists the scenario's valid keys.
    """

    def __init__(self, scenario: str, unknown: List[str], valid: List[str]) -> None:
        listing = ", ".join(sorted(valid)) or "(this scenario takes no parameters)"
        super().__init__(
            f"unknown parameter(s) {', '.join(sorted(unknown))} for scenario "
            f"{scenario!r}; valid: {listing}"
        )
        self.scenario = scenario
        self.unknown = sorted(unknown)
        self.valid = sorted(valid)


@dataclass(frozen=True)
class RegisteredScenario:
    """One registry entry: the callable plus its template spec."""

    name: str
    fn: ScenarioFn
    spec: ScenarioSpec
    description: str = ""
    #: Parameter names the scenario reads from ``ctx.params``, or ``None``
    #: to skip validation (legacy scenarios that never declared them).
    param_names: Optional[tuple] = None
    #: Typed declarations (name -> :class:`~repro.scenario.params.ParamSpec`)
    #: for the parameters that have them; values are coerced and
    #: range-checked through :meth:`coerce_params` before a run.
    param_schema: Optional[Dict[str, ParamSpec]] = None

    def validate_params(self, params: Optional[Dict[str, object]]) -> None:
        """Raise :class:`UnknownParameterError` on undeclared keys."""
        if not params or self.param_names is None:
            return
        unknown = [key for key in params if key not in self.param_names]
        if unknown:
            raise UnknownParameterError(
                self.name, unknown, list(self.param_names)
            )

    def coerce_params(
        self, params: Optional[Dict[str, object]]
    ) -> Dict[str, object]:
        """Validate names, then coerce values through the schema.

        Returns the coerced copy (``--param`` strings become their
        declared types); raises :class:`UnknownParameterError` on an
        undeclared key or
        :class:`~repro.scenario.params.ParameterValueError` on a value
        that fails its type/range/choice check.
        """
        self.validate_params(params)
        return coerce_params(self.name, self.param_schema, params)

    def build_spec(
        self,
        seed: Optional[int] = None,
        params: Optional[Dict[str, object]] = None,
        **overrides: object,
    ) -> ScenarioSpec:
        """The template spec with per-run seed/params/overrides applied."""
        if seed is not None:
            overrides["seed"] = seed
        if params:
            overrides["params"] = params
        return self.spec.derive(**overrides) if overrides else self.spec

    def derive_spec(
        self, seed: int, params: Optional[Dict[str, object]] = None
    ) -> ScenarioSpec:
        """The concrete spec one campaign run executes: the template with
        the run's seed and parameters stamped on.  The campaign runner
        embeds ``derive_spec(...).to_dict()`` in every run record so a
        manifest (or a shard of one) is auditable without the registry."""
        return self.spec.derive(seed=int(seed), params=dict(params or {}))

    def fingerprint(self) -> str:
        """Stable identity of *what this scenario is*: a SHA-256 over the
        name, the template spec, and the declared parameter surface.

        Shard manifests record this so ``campaign merge`` can refuse to
        combine shards that were produced by different scenario
        definitions (same name, different template) — the silent way a
        sharded sweep goes wrong.
        """
        payload = {
            "name": self.name,
            "spec": self.spec.to_dict(),
            "param_names": (
                sorted(self.param_names) if self.param_names is not None else None
            ),
            "param_schema": (
                {k: self.param_schema[k].to_dict() for k in sorted(self.param_schema)}
                if self.param_schema
                else None
            ),
        }
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ScenarioResult:
    """What one scenario run produced."""

    name: str
    outputs: Dict[str, object]
    ctx: SimContext = field(repr=False)

    @property
    def spec(self) -> ScenarioSpec:
        return self.ctx.spec


class ScenarioRegistry:
    """Decorator-based name → scenario mapping."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, RegisteredScenario] = {}
        self._builtins_loaded = False

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        spec: Optional[ScenarioSpec] = None,
        description: str = "",
        param_names: Optional[tuple] = None,
        param_schema: Optional[Dict[str, ParamSpec]] = None,
    ) -> Callable[[ScenarioFn], ScenarioFn]:
        """Register ``fn(ctx) -> outputs`` under ``name`` (decorator).

        ``param_names`` declares every key the scenario reads from
        ``ctx.params``; runs passing any other key fail fast with
        :class:`UnknownParameterError`.  ``None`` (the default) skips the
        check for legacy scenarios that never declared their surface.

        ``param_schema`` goes further: typed declarations
        (:mod:`repro.scenario.params`) whose values are coerced and
        range-checked before every run.  Schema keys must be declared
        names; with ``param_names`` omitted, the schema's keys become
        the declared surface.
        """

        def decorator(fn: ScenarioFn) -> ScenarioFn:
            if name in self._scenarios:
                raise DuplicateScenarioError(
                    f"scenario {name!r} already registered"
                )
            summary = description
            if not summary and fn.__doc__:
                summary = fn.__doc__.strip().splitlines()[0]
            names = tuple(param_names) if param_names is not None else None
            if param_schema:
                if names is None:
                    names = tuple(param_schema)
                else:
                    undeclared = sorted(set(param_schema) - set(names))
                    if undeclared:
                        raise ValueError(
                            f"scenario {name!r}: param_schema keys "
                            f"{', '.join(undeclared)} missing from param_names"
                        )
            self._scenarios[name] = RegisteredScenario(
                name=name,
                fn=fn,
                spec=spec if spec is not None else ScenarioSpec(),
                description=summary,
                param_names=names,
                param_schema=dict(param_schema) if param_schema else None,
            )
            return fn

        return decorator

    def _ensure_builtins(self) -> None:
        if self._builtins_loaded:
            return
        self._builtins_loaded = True
        # Imported for registration side effects.  The telemetry module
        # is the legacy home of the campaign scenarios and re-exports the
        # library's, so loading the library covers both.
        import repro.scenario.library  # noqa: F401

        # Out-of-tree scenario modules (comma-separated module paths).
        # This is how a control-plane shard subprocess — which receives
        # only a scenario *name* on its command line — learns about
        # scenarios registered outside repro.scenario.library.
        extra = os.environ.get(SCENARIO_MODULES_ENV, "")
        for module_name in (m.strip() for m in extra.split(",")):
            if not module_name:
                continue
            try:
                importlib.import_module(module_name)
            except ImportError as exc:
                raise ImportError(
                    f"cannot import scenario module {module_name!r} from "
                    f"{SCENARIO_MODULES_ENV}: {exc}"
                ) from exc

    def get(self, name: str) -> RegisteredScenario:
        self._ensure_builtins()
        try:
            return self._scenarios[name]
        except KeyError:
            raise UnknownScenarioError(name, self.names()) from None

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return name in self._scenarios

    def names(self) -> List[str]:
        self._ensure_builtins()
        return sorted(self._scenarios)

    def describe(self) -> List[Dict[str, str]]:
        """Name + description rows for ``python -m repro run --list``."""
        self._ensure_builtins()
        return [
            {"name": entry.name, "description": entry.description}
            for entry in (self._scenarios[n] for n in self.names())
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        name: str,
        seed: Optional[int] = None,
        params: Optional[Dict[str, object]] = None,
        metrics=None,
        quiet: bool = False,
        **spec_overrides: object,
    ) -> ScenarioResult:
        """Build the context and run the named scenario once."""
        entry = self.get(name)
        params = entry.coerce_params(params)
        spec = entry.build_spec(seed=seed, params=params, **spec_overrides)
        ctx = SimContext(spec, metrics=metrics, quiet=quiet)
        outputs = entry.fn(ctx)
        return ScenarioResult(name=name, outputs=dict(outputs or {}), ctx=ctx)


#: The process-wide registry every front end shares.
REGISTRY = ScenarioRegistry()


def scenario(
    name: str,
    spec: Optional[ScenarioSpec] = None,
    description: str = "",
    param_names: Optional[tuple] = None,
    param_schema: Optional[Dict[str, ParamSpec]] = None,
) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario in the shared :data:`REGISTRY` (decorator)."""
    return REGISTRY.register(
        name, spec=spec, description=description, param_names=param_names,
        param_schema=param_schema,
    )


def available_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    return REGISTRY.names()


def run_scenario(
    name: str,
    seed: Optional[int] = None,
    params: Optional[Dict[str, object]] = None,
    metrics=None,
    quiet: bool = False,
    **spec_overrides: object,
) -> ScenarioResult:
    """Run a registered scenario once via the shared registry."""
    return REGISTRY.run(
        name, seed=seed, params=params, metrics=metrics, quiet=quiet,
        **spec_overrides,
    )
