"""Vital-signs estimation: breathing *and* heart rate from ACK CSI.

The paper's closing open question — "can an attacker estimate vital signs
such as heart rate and breathing rate of people from the CSI of their
WiFi devices?" — answered constructively.  Respiration (~5 mm chest
displacement at 0.1–0.7 Hz) and heartbeat (~0.5 mm chest-wall motion at
0.8–2.5 Hz) occupy disjoint frequency bands, so a single CSI amplitude
stream yields both via band-split periodogram peaks; the breathing
fundamental's harmonics are notched out of the cardiac band first, since
breathing is an order of magnitude stronger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sensing.breathing import BreathingEstimate, BreathingRateEstimator
from repro.sensing.csi_processing import (
    CsiSeries,
    hampel_filter,
    moving_average,
    resample_uniform,
)

#: Plausible resting cardiac band (beats per minute).
MIN_HEART_RATE_BPM = 45.0
MAX_HEART_RATE_BPM = 150.0


@dataclass
class VitalSigns:
    breathing: Optional[BreathingEstimate]
    heart_rate_bpm: Optional[float]
    heart_confidence: float

    @property
    def complete(self) -> bool:
        return self.breathing is not None and self.heart_rate_bpm is not None


class VitalSignsEstimator:
    """Joint breathing + heart-rate estimator for one CSI stream."""

    def __init__(
        self,
        resample_hz: float = 20.0,
        min_heart_bpm: float = MIN_HEART_RATE_BPM,
        max_heart_bpm: float = MAX_HEART_RATE_BPM,
        harmonic_notch_width_hz: float = 0.06,
    ) -> None:
        self.resample_hz = resample_hz
        self.min_heart_bpm = min_heart_bpm
        self.max_heart_bpm = max_heart_bpm
        self.harmonic_notch_width_hz = harmonic_notch_width_hz
        self._breathing = BreathingRateEstimator(resample_hz=resample_hz)

    def estimate(self, series: CsiSeries) -> VitalSigns:
        breathing = self._breathing.estimate(series)
        heart_rate, confidence = self._heart_rate(series, breathing)
        return VitalSigns(
            breathing=breathing,
            heart_rate_bpm=heart_rate,
            heart_confidence=confidence,
        )

    # ------------------------------------------------------------------
    # Cardiac band
    # ------------------------------------------------------------------
    def _heart_rate(
        self,
        series: CsiSeries,
        breathing: Optional[BreathingEstimate],
    ) -> Tuple[Optional[float], float]:
        if series.duration < 20.0 or len(series) < 64:
            return None, 0.0
        cleaned = hampel_filter(series.amplitudes)
        uniform = resample_uniform(
            CsiSeries(series.times, cleaned, series.subcarrier), self.resample_hz
        )
        # Remove the slow (respiratory + drift) component before the FFT.
        slow = moving_average(uniform.amplitudes, int(self.resample_hz * 1.0))
        fast = uniform.amplitudes - slow

        spectrum = np.abs(np.fft.rfft(fast * np.hanning(len(fast)))) ** 2
        frequencies = np.fft.rfftfreq(len(fast), d=1.0 / self.resample_hz)

        low = self.min_heart_bpm / 60.0
        high = self.max_heart_bpm / 60.0
        in_band = (frequencies >= low) & (frequencies <= high)
        if breathing is not None:
            # Notch out breathing harmonics that fall in the cardiac band.
            fundamental = breathing.rate_bpm / 60.0
            for harmonic in range(2, 8):
                centre = harmonic * fundamental
                if centre > high + self.harmonic_notch_width_hz:
                    break
                in_band &= np.abs(frequencies - centre) > self.harmonic_notch_width_hz
        if not np.any(in_band):
            return None, 0.0
        band_spectrum = spectrum[in_band]
        band_frequencies = frequencies[in_band]
        total = float(np.sum(band_spectrum))
        if total <= 0.0:
            return None, 0.0
        peak_index = int(np.argmax(band_spectrum))
        peak_power = float(band_spectrum[peak_index])
        median_power = float(np.median(band_spectrum)) or 1e-30
        confidence = peak_power / median_power
        if confidence < 5.0:
            # No clear cardiac line — report nothing rather than noise.
            return None, confidence
        return float(band_frequencies[peak_index] * 60.0), confidence
