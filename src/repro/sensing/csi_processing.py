"""CSI stream conditioning.

Raw per-frame CSI amplitude is irregularly sampled (frames are paced by
the injector but jittered by DCF and losses) and contaminated by impulse
noise from imperfect channel estimates.  The standard WiFi-sensing
pre-processing chain — Hampel outlier rejection, resampling onto a
uniform grid, moving-window smoothing, normalization — lives here.
"""

from __future__ import annotations

from dataclasses import dataclass


import numpy as np


@dataclass
class CsiSeries:
    """An amplitude time series for one subcarrier."""

    times: np.ndarray
    amplitudes: np.ndarray
    subcarrier: int = 17

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.amplitudes = np.asarray(self.amplitudes, dtype=float)
        if self.times.shape != self.amplitudes.shape:
            raise ValueError("times and amplitudes must have the same shape")
        if len(self.times) > 1 and np.any(np.diff(self.times) < 0):
            raise ValueError("times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        if len(self.times) < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def mean_rate_hz(self) -> float:
        """Effective sample (measurement) rate."""
        if self.duration <= 0.0:
            return 0.0
        return (len(self.times) - 1) / self.duration

    def slice(self, start: float, end: float) -> "CsiSeries":
        mask = (self.times >= start) & (self.times < end)
        return CsiSeries(self.times[mask], self.amplitudes[mask], self.subcarrier)


def hampel_filter(
    values: np.ndarray, window: int = 7, threshold_sigmas: float = 3.0
) -> np.ndarray:
    """Replace outliers with the local median (Hampel identifier).

    The classic CSI-cleaning first step: channel-estimation glitches are
    impulsive and would otherwise dominate variance features.
    """
    values = np.asarray(values, dtype=float)
    if window < 1:
        raise ValueError("window must be >= 1")
    cleaned = values.copy()
    half = window // 2
    scale = 1.4826  # MAD → sigma for Gaussian data
    for index in range(len(values)):
        low = max(index - half, 0)
        high = min(index + half + 1, len(values))
        neighbourhood = values[low:high]
        median = np.median(neighbourhood)
        mad = np.median(np.abs(neighbourhood - median))
        if mad == 0.0:
            # Locally constant neighbourhood: any deviation is an outlier.
            if values[index] != median:
                cleaned[index] = median
            continue
        if abs(values[index] - median) > threshold_sigmas * scale * mad:
            cleaned[index] = median
    return cleaned


def resample_uniform(
    series: CsiSeries, rate_hz: float
) -> CsiSeries:
    """Linear interpolation onto a uniform grid at ``rate_hz``."""
    if rate_hz <= 0.0:
        raise ValueError("rate must be positive")
    if len(series) < 2:
        return series
    start, end = float(series.times[0]), float(series.times[-1])
    count = max(int((end - start) * rate_hz) + 1, 2)
    grid = np.linspace(start, end, count)
    values = np.interp(grid, series.times, series.amplitudes)
    return CsiSeries(grid, values, series.subcarrier)


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving mean with edge shrinkage (same-length output)."""
    values = np.asarray(values, dtype=float)
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1 or len(values) == 0:
        return values.copy()
    kernel = np.ones(window) / window
    padded = np.pad(values, (window // 2, window - 1 - window // 2), mode="edge")
    return np.convolve(padded, kernel, mode="valid")


def moving_std(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving standard deviation (same-length output)."""
    values = np.asarray(values, dtype=float)
    mean = moving_average(values, window)
    mean_sq = moving_average(values**2, window)
    variance = np.maximum(mean_sq - mean**2, 0.0)
    return np.sqrt(variance)


def normalize_series(values: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance scaling (constant series map to zeros)."""
    values = np.asarray(values, dtype=float)
    std = float(np.std(values))
    scale = float(np.max(np.abs(values))) if values.size else 0.0
    if std <= 1e-12 * max(scale, 1.0):
        # Numerically constant (float jitter around a constant level).
        return np.zeros_like(values)
    return (values - float(np.mean(values))) / std
