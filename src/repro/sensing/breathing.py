"""Breathing-rate estimation from ACK CSI.

One of the paper's Section 4.3 open questions — "can an attacker estimate
vital signs such as breathing rate from the CSI of their WiFi devices?" —
answered constructively: chest motion is a ~0.2–0.5 Hz sinusoid of a few
millimetres, which modulates the dynamic path; a periodogram peak in the
respiratory band recovers the rate, exactly as in two-device respiration
sensing systems (Liu et al., Wang et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sensing.csi_processing import (
    CsiSeries,
    hampel_filter,
    moving_average,
    resample_uniform,
)

#: Plausible human respiratory band (breaths per minute).
MIN_RATE_BPM = 6.0
MAX_RATE_BPM = 42.0


@dataclass
class BreathingEstimate:
    rate_bpm: float
    confidence: float  # peak power / band median power
    band_power_fraction: float


class BreathingRateEstimator:
    """Periodogram-peak respiratory rate estimator."""

    def __init__(
        self,
        resample_hz: float = 10.0,
        smooth_window: int = 5,
        min_rate_bpm: float = MIN_RATE_BPM,
        max_rate_bpm: float = MAX_RATE_BPM,
    ) -> None:
        self.resample_hz = resample_hz
        self.smooth_window = smooth_window
        self.min_rate_bpm = min_rate_bpm
        self.max_rate_bpm = max_rate_bpm

    def estimate(self, series: CsiSeries) -> Optional[BreathingEstimate]:
        """Estimate the breathing rate, or ``None`` if the recording is too
        short (needs at least ~3 breath cycles to resolve a peak)."""
        min_duration = 3.0 * 60.0 / self.min_rate_bpm * 0.5  # ≈15 s
        if series.duration < min_duration or len(series) < 16:
            return None
        cleaned = hampel_filter(series.amplitudes)
        uniform = resample_uniform(
            CsiSeries(series.times, cleaned, series.subcarrier), self.resample_hz
        )
        smoothed = moving_average(uniform.amplitudes, self.smooth_window)
        detrended = smoothed - moving_average(smoothed, int(self.resample_hz * 5))

        spectrum = np.abs(np.fft.rfft(detrended)) ** 2
        frequencies = np.fft.rfftfreq(len(detrended), d=1.0 / self.resample_hz)
        low = self.min_rate_bpm / 60.0
        high = self.max_rate_bpm / 60.0
        band = (frequencies >= low) & (frequencies <= high)
        if not np.any(band) or float(np.sum(spectrum)) == 0.0:
            return None
        band_spectrum = spectrum[band]
        band_frequencies = frequencies[band]
        peak_index = int(np.argmax(band_spectrum))
        peak_power = float(band_spectrum[peak_index])
        median_power = float(np.median(band_spectrum)) or 1e-30
        return BreathingEstimate(
            rate_bpm=float(band_frequencies[peak_index] * 60.0),
            confidence=peak_power / median_power,
            band_power_fraction=float(np.sum(band_spectrum) / np.sum(spectrum)),
        )
