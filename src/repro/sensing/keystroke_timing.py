"""Keystroke timing extraction — from "someone is typing" to *when*.

The keystroke-inference literature (WindTalker and successors) recovers
typed content in two steps: detect individual keystroke instants in the
CSI stream, then classify each keystroke from its micro-signature and its
inter-keystroke timing (dwell/flight times leak PINs and passwords even
without per-key classification).  This module implements the first step
on ACK CSI: each keystroke is a ~30 ms transient that shows up as a burst
in the amplitude derivative, so a matched short-window energy detector
with adaptive thresholding and a refractory period recovers the instants.

The tests check the recovered instants against the motion model's ground
truth (the actual keystroke times that generated the channel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.sensing.csi_processing import (
    CsiSeries,
    hampel_filter,
    moving_std,
    resample_uniform,
)

#: Minimum spacing between distinct keystrokes (faster than ~8 keys/s is
#: rare typing; a wider refractory merges the rise/fall edges of one
#: keystroke transient into a single detection).
MIN_KEY_SPACING_S = 0.12


@dataclass
class KeystrokeDetection:
    """Detected keystroke instants and the detector's working signal."""

    times: np.ndarray
    scores: np.ndarray
    threshold: float

    @property
    def count(self) -> int:
        return len(self.times)

    def intervals(self) -> np.ndarray:
        """Inter-keystroke (flight) times — the password-leaking feature."""
        if len(self.times) < 2:
            return np.array([])
        return np.diff(self.times)


class KeystrokeTimingExtractor:
    """Energy-burst keystroke detector for CSI amplitude streams."""

    def __init__(
        self,
        resample_hz: float = 100.0,
        burst_window_s: float = 0.06,
        threshold_sigmas: float = 4.0,
        min_spacing_s: float = MIN_KEY_SPACING_S,
    ) -> None:
        self.resample_hz = resample_hz
        self.burst_window_s = burst_window_s
        self.threshold_sigmas = threshold_sigmas
        self.min_spacing_s = min_spacing_s

    def detect(self, series: CsiSeries) -> KeystrokeDetection:
        """Find keystroke instants in a (typing-phase) CSI recording."""
        if len(series) < 16:
            return KeystrokeDetection(np.array([]), np.array([]), 0.0)
        cleaned = hampel_filter(series.amplitudes)
        uniform = resample_uniform(
            CsiSeries(series.times, cleaned, series.subcarrier), self.resample_hz
        )
        # Derivative energy: keystroke transients move the channel fast;
        # tremor, drift, and filter artifacts do not.  (A subtract-the-
        # moving-average high-pass rings between keystrokes and doubles
        # the detection count — the derivative does not.)
        derivative = np.diff(uniform.amplitudes, prepend=uniform.amplitudes[0])
        derivative *= self.resample_hz
        window = max(int(self.burst_window_s * self.resample_hz), 3)
        scores = moving_std(derivative, window)
        threshold = self._two_class_threshold(scores)
        if threshold is None:
            # Unimodal score distribution: no keystroke class present.
            return KeystrokeDetection(
                np.array([]), scores, float(np.max(scores, initial=0.0))
            )
        times = self._pick_peaks(uniform.times, scores, threshold)
        return KeystrokeDetection(times=times, scores=scores, threshold=threshold)

    def _two_class_threshold(self, scores: np.ndarray) -> Optional[float]:
        """Otsu's threshold between the noise floor and keystroke bursts.

        Typing scores are bimodal (quiet derivative noise vs transient
        bursts); a median+MAD rule fails there because dense keystrokes
        pollute the robust statistics.  Otsu finds the valley; a
        separation guard (burst class must sit several noise sigmas above
        the floor) rejects unimodal — keystroke-free — streams.
        """
        finite = scores[np.isfinite(scores)]
        if len(finite) < 8 or float(np.ptp(finite)) <= 0.0:
            return None
        histogram, edges = np.histogram(finite, bins=128)
        centres = (edges[:-1] + edges[1:]) / 2.0
        total = histogram.sum()
        best_threshold, best_variance = None, -1.0
        weight0 = np.cumsum(histogram)
        weight1 = total - weight0
        cumulative = np.cumsum(histogram * centres)
        mean_total = cumulative[-1]
        valid = (weight0 > 0) & (weight1 > 0)
        mu0 = np.where(valid, cumulative / np.maximum(weight0, 1), 0.0)
        mu1 = np.where(
            valid, (mean_total - cumulative) / np.maximum(weight1, 1), 0.0
        )
        between = weight0 * weight1 * (mu0 - mu1) ** 2
        between[~valid] = -1.0
        best = int(np.argmax(between))
        if between[best] <= 0.0:
            return None
        best_threshold = float(centres[best])
        # Separation guard.
        low = finite[finite <= best_threshold]
        high = finite[finite > best_threshold]
        if len(low) < 4 or len(high) < 2:
            return None
        sigma0 = float(np.std(low)) or 1e-12
        if float(np.mean(high)) - float(np.mean(low)) < self.threshold_sigmas * sigma0:
            return None
        return best_threshold

    def _pick_peaks(
        self, times: np.ndarray, scores: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Local maxima above threshold with a refractory period."""
        above = scores > threshold
        picked: List[float] = []
        index = 0
        n = len(scores)
        while index < n:
            if not above[index]:
                index += 1
                continue
            # Extend the above-threshold run and take its maximum.
            run_end = index
            while run_end + 1 < n and above[run_end + 1]:
                run_end += 1
            peak = index + int(np.argmax(scores[index : run_end + 1]))
            peak_time = float(times[peak])
            if not picked or peak_time - picked[-1] >= self.min_spacing_s:
                picked.append(peak_time)
            index = run_end + 1
        return np.array(picked)


def match_keystrokes(
    detected: Sequence[float],
    truth: Sequence[float],
    tolerance_s: float = 0.05,
) -> tuple:
    """Greedy one-to-one matching of detections to ground-truth instants.

    Returns ``(hits, misses, false_alarms)`` where hits is a list of
    (truth_time, detected_time) pairs.
    """
    remaining = list(detected)
    hits = []
    misses = []
    for instant in sorted(truth):
        best = None
        best_error = tolerance_s
        for candidate in remaining:
            error = abs(candidate - instant)
            if error <= best_error:
                best, best_error = candidate, error
        if best is None:
            misses.append(instant)
        else:
            hits.append((instant, best))
            remaining.remove(best)
    return hits, misses, list(remaining)
