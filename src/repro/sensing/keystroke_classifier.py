"""Activity classification — "holding" vs "typing" and friends.

The paper's Figure 5 claim is that the CSI signatures of distinct
activities are "very distinct"; we make that quantitative with a
nearest-centroid classifier over the window features.  Nearest-centroid
is deliberately simple: if the signatures separate under it, the paper's
"one can potentially reveal what has been typed" claim holds a fortiori
for stronger models.

The classifier is trained on labelled windows (the benchmarks synthesize
a calibration recording per activity through the *same* channel model and
measurement path, then evaluate on fresh recordings with different
random phases).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sensing.features import WindowFeatures


class ActivityLabel(enum.Enum):
    STILL = "still"
    PICKUP = "pickup"
    HOLD = "hold"
    TYPING = "typing"
    WALKING = "walking"

    @classmethod
    def from_string(cls, label: str) -> "ActivityLabel":
        for member in cls:
            if member.value == label:
                return member
        raise ValueError(f"unknown activity label {label!r}")


@dataclass
class ActivityClassifier:
    """Nearest-centroid classifier in standardized feature space."""

    _centroids: Dict[ActivityLabel, np.ndarray] = field(default_factory=dict)
    _mean: Optional[np.ndarray] = None
    _std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self, samples: Sequence[Tuple[WindowFeatures, ActivityLabel]]
    ) -> "ActivityClassifier":
        if not samples:
            raise ValueError("cannot fit on an empty training set")
        matrix = np.vstack([features.as_vector() for features, _ in samples])
        # Log-compress the heavy-tailed dispersion features.
        matrix = np.log1p(np.maximum(matrix, 0.0))
        self._mean = matrix.mean(axis=0)
        self._std = matrix.std(axis=0)
        self._std[self._std == 0.0] = 1.0
        standardized = (matrix - self._mean) / self._std
        self._centroids = {}
        labels = [label for _, label in samples]
        for label in set(labels):
            rows = standardized[[i for i, l in enumerate(labels) if l is label]]
            self._centroids[label] = rows.mean(axis=0)
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._centroids)

    def _standardize(self, features: WindowFeatures) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise RuntimeError("classifier is not fitted")
        vector = np.log1p(np.maximum(features.as_vector(), 0.0))
        return (vector - self._mean) / self._std

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, features: WindowFeatures) -> ActivityLabel:
        scores = self.scores(features)
        return min(scores, key=scores.get)

    def scores(self, features: WindowFeatures) -> Dict[ActivityLabel, float]:
        """Euclidean distance to each centroid (lower = more likely)."""
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted")
        vector = self._standardize(features)
        return {
            label: float(np.linalg.norm(vector - centroid))
            for label, centroid in self._centroids.items()
        }

    def predict_many(
        self, windows: Sequence[WindowFeatures]
    ) -> List[ActivityLabel]:
        return [self.predict(features) for features in windows]

    def accuracy(
        self, samples: Sequence[Tuple[WindowFeatures, ActivityLabel]]
    ) -> float:
        """Fraction of labelled windows classified correctly."""
        if not samples:
            return 0.0
        correct = sum(
            1 for features, label in samples if self.predict(features) is label
        )
        return correct / len(samples)

    def confusion(
        self, samples: Sequence[Tuple[WindowFeatures, ActivityLabel]]
    ) -> Dict[Tuple[ActivityLabel, ActivityLabel], int]:
        """(truth, predicted) → count."""
        table: Dict[Tuple[ActivityLabel, ActivityLabel], int] = {}
        for features, label in samples:
            key = (label, self.predict(features))
            table[key] = table.get(key, 0) + 1
        return table
