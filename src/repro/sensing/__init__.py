"""WiFi sensing pipeline.

Turns streams of per-frame CSI measurements (what the attacker collects
from the victim's ACKs) into inferences: activity segmentation and
keystroke/activity classification for the Section 4.1 privacy threat,
breathing-rate estimation and occupancy detection for the Section 4.3
sensing opportunities.
"""

from repro.sensing.breathing import BreathingRateEstimator
from repro.sensing.csi_processing import (
    CsiSeries,
    hampel_filter,
    moving_average,
    moving_std,
    normalize_series,
    resample_uniform,
)
from repro.sensing.features import WindowFeatures, extract_features, sliding_windows
from repro.sensing.keystroke_classifier import ActivityClassifier, ActivityLabel
from repro.sensing.keystroke_timing import (
    KeystrokeDetection,
    KeystrokeTimingExtractor,
    match_keystrokes,
)
from repro.sensing.occupancy import OccupancyDetector
from repro.sensing.segmentation import ActivitySegment, segment_by_variance
from repro.sensing.vitals import VitalSigns, VitalSignsEstimator

__all__ = [
    "ActivityClassifier",
    "ActivityLabel",
    "ActivitySegment",
    "BreathingRateEstimator",
    "CsiSeries",
    "KeystrokeDetection",
    "KeystrokeTimingExtractor",
    "OccupancyDetector",
    "match_keystrokes",
    "VitalSigns",
    "VitalSignsEstimator",
    "WindowFeatures",
    "extract_features",
    "hampel_filter",
    "moving_average",
    "moving_std",
    "normalize_series",
    "resample_uniform",
    "segment_by_variance",
    "sliding_windows",
]
