"""Window feature extraction for activity recognition.

The Figure 5 observation is that different activities leave different
*texture* in the CSI amplitude: still ⇒ flat; pickup ⇒ one huge
low-frequency excursion; holding ⇒ small slow wobble; typing ⇒ repeated
sharp bursts.  Those textures separate cleanly in a small feature space:
dispersion (std, peak-to-peak), spectral location (centroid, dominant
frequency), and burstiness (peak count, crest factor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.sensing.csi_processing import CsiSeries


@dataclass(frozen=True)
class WindowFeatures:
    """Features of one analysis window."""

    start: float
    end: float
    std: float
    peak_to_peak: float
    mean_abs_derivative: float
    spectral_centroid_hz: float
    dominant_frequency_hz: float
    burst_count: float  # bursts per second above 2σ
    crest_factor: float

    def as_vector(self) -> np.ndarray:
        return np.array(
            [
                self.std,
                self.peak_to_peak,
                self.mean_abs_derivative,
                self.spectral_centroid_hz,
                self.dominant_frequency_hz,
                self.burst_count,
                self.crest_factor,
            ]
        )

    @staticmethod
    def names() -> List[str]:
        return [
            "std",
            "peak_to_peak",
            "mean_abs_derivative",
            "spectral_centroid_hz",
            "dominant_frequency_hz",
            "burst_count",
            "crest_factor",
        ]


def _spectrum(values: np.ndarray, rate_hz: float) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided magnitude spectrum of the detrended window."""
    detrended = values - np.mean(values)
    spectrum = np.abs(np.fft.rfft(detrended))
    frequencies = np.fft.rfftfreq(len(values), d=1.0 / rate_hz)
    return frequencies, spectrum


def extract_features(window: CsiSeries) -> WindowFeatures:
    """Compute :class:`WindowFeatures` for one (uniformly sampled) window."""
    values = window.amplitudes
    if len(values) < 4:
        raise ValueError("window too short for feature extraction")
    rate = window.mean_rate_hz or 1.0
    std = float(np.std(values))
    peak_to_peak = float(np.max(values) - np.min(values))
    derivative = np.diff(values) * rate
    mean_abs_derivative = float(np.mean(np.abs(derivative)))

    frequencies, spectrum = _spectrum(values, rate)
    # Drop DC for the spectral statistics.
    frequencies, spectrum = frequencies[1:], spectrum[1:]
    total = float(np.sum(spectrum))
    if total > 0.0:
        centroid = float(np.sum(frequencies * spectrum) / total)
        dominant = float(frequencies[int(np.argmax(spectrum))])
    else:
        centroid = 0.0
        dominant = 0.0

    detrended = values - np.mean(values)
    sigma = std if std > 0.0 else 1.0
    above = np.abs(detrended) > 2.0 * sigma
    # Count rising edges of the above-threshold indicator.
    edges = int(np.sum(np.diff(above.astype(int)) == 1))
    duration = window.duration or 1.0
    burst_count = edges / duration
    rms = float(np.sqrt(np.mean(detrended**2))) or 1.0
    crest_factor = float(np.max(np.abs(detrended)) / rms) if std > 0.0 else 0.0

    return WindowFeatures(
        start=float(window.times[0]),
        end=float(window.times[-1]),
        std=std,
        peak_to_peak=peak_to_peak,
        mean_abs_derivative=mean_abs_derivative,
        spectral_centroid_hz=centroid,
        dominant_frequency_hz=dominant,
        burst_count=burst_count,
        crest_factor=crest_factor,
    )


def sliding_windows(
    series: CsiSeries, window_s: float = 2.0, step_s: float = 1.0
) -> Iterator[CsiSeries]:
    """Yield overlapping windows covering the series."""
    if window_s <= 0.0 or step_s <= 0.0:
        raise ValueError("window and step must be positive")
    if len(series) == 0:
        return
    start = float(series.times[0])
    end = float(series.times[-1])
    t = start
    while t < end:
        window = series.slice(t, t + window_s)
        if len(window) >= 4:
            yield window
        t += step_s
