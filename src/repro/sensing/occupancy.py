"""Occupancy / motion detection.

The simplest of the Section 4.3 opportunities: "can an attacker detect
occupancy?"  Motion near the target device raises the short-window CSI
variance far above the empty-room floor, so a calibrated variance
threshold detects presence.  Calibration against an empty-room recording
is part of the API because that is how such detectors are deployed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sensing.csi_processing import CsiSeries, hampel_filter, moving_std


@dataclass
class OccupancyReading:
    start: float
    end: float
    occupied: bool
    motion_score: float


class OccupancyDetector:
    """Variance-threshold presence detector with empty-room calibration."""

    def __init__(self, window: int = 25, threshold_ratio: float = 4.0) -> None:
        self.window = window
        self.threshold_ratio = threshold_ratio
        self._floor: Optional[float] = None

    def calibrate(self, empty_room: CsiSeries) -> float:
        """Learn the quiet-channel variance floor; returns the floor."""
        if len(empty_room) < self.window:
            raise ValueError("calibration recording too short")
        cleaned = hampel_filter(empty_room.amplitudes)
        sigma = moving_std(cleaned, self.window)
        self._floor = float(np.percentile(sigma, 90.0))
        return self._floor

    @property
    def is_calibrated(self) -> bool:
        return self._floor is not None

    def detect(self, series: CsiSeries, interval_s: float = 1.0) -> List[OccupancyReading]:
        """Chunk the stream into intervals and score each for motion."""
        if self._floor is None:
            raise RuntimeError("detector is not calibrated")
        if len(series) == 0:
            return []
        threshold = max(self.threshold_ratio * self._floor, 1e-12)
        cleaned = hampel_filter(series.amplitudes)
        sigma = moving_std(cleaned, self.window)
        readings: List[OccupancyReading] = []
        start = float(series.times[0])
        end = float(series.times[-1])
        t = start
        while t < end:
            mask = (series.times >= t) & (series.times < t + interval_s)
            if np.any(mask):
                score = float(np.max(sigma[mask]))
                readings.append(
                    OccupancyReading(
                        start=t,
                        end=min(t + interval_s, end),
                        occupied=score > threshold,
                        motion_score=score / threshold,
                    )
                )
            t += interval_s
        return readings

    def occupancy_fraction(self, series: CsiSeries) -> float:
        """Fraction of intervals flagged occupied."""
        readings = self.detect(series)
        if not readings:
            return 0.0
        return sum(1 for r in readings if r.occupied) / len(readings)
