"""Activity segmentation.

Splits a CSI amplitude stream into quiet and active segments by
thresholding the moving standard deviation — the first stage of every
keystroke-inference pipeline (WindTalker isolates typing bouts the same
way before classifying individual keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sensing.csi_processing import CsiSeries, moving_std


@dataclass(frozen=True)
class ActivitySegment:
    start: float
    end: float
    active: bool
    mean_std: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def segment_by_variance(
    series: CsiSeries,
    window: int = 25,
    threshold_ratio: float = 3.0,
    min_segment_s: float = 0.5,
) -> List[ActivitySegment]:
    """Label the stream active/quiet by moving-σ thresholding.

    The threshold adapts to the stream: ``threshold_ratio`` times the 10th
    percentile of the moving σ (the quiet floor), so the same settings work
    across link geometries.  Segments shorter than ``min_segment_s`` are
    merged into their neighbours to suppress chatter.
    """
    if len(series) < window:
        if len(series) == 0:
            return []
        return [
            ActivitySegment(
                start=float(series.times[0]),
                end=float(series.times[-1]),
                active=False,
                mean_std=float(np.std(series.amplitudes)),
            )
        ]
    sigma = moving_std(series.amplitudes, window)
    floor = float(np.percentile(sigma, 10.0))
    threshold = max(threshold_ratio * floor, 1e-12)
    active = sigma > threshold

    # Run-length encode.
    segments: List[ActivitySegment] = []
    run_start = 0
    for index in range(1, len(active) + 1):
        if index == len(active) or active[index] != active[run_start]:
            segments.append(
                ActivitySegment(
                    start=float(series.times[run_start]),
                    end=float(
                        series.times[index - 1]
                        if index == len(active)
                        else series.times[index]
                    ),
                    active=bool(active[run_start]),
                    mean_std=float(np.mean(sigma[run_start:index])),
                )
            )
            run_start = index

    return _merge_short(segments, min_segment_s)


def _merge_short(
    segments: List[ActivitySegment], min_segment_s: float
) -> List[ActivitySegment]:
    """Absorb sub-minimum segments into the previous segment."""
    if not segments:
        return segments
    merged: List[ActivitySegment] = [segments[0]]
    for segment in segments[1:]:
        previous = merged[-1]
        if segment.duration < min_segment_s:
            merged[-1] = ActivitySegment(
                start=previous.start,
                end=segment.end,
                active=previous.active,
                mean_std=previous.mean_std,
            )
        elif segment.active == previous.active:
            merged[-1] = ActivitySegment(
                start=previous.start,
                end=segment.end,
                active=previous.active,
                mean_std=(previous.mean_std + segment.mean_std) / 2.0,
            )
        else:
            merged.append(segment)
    return merged
